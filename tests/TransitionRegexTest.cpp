//===- tests/TransitionRegexTest.cpp - TR algebra tests ---------------------===//

#include "core/TransitionRegex.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

/// Language equality of two regexes checked by exhaustive matching of all
/// words up to length 3 over a small representative alphabet (plus the ε
/// case via nullability). Node equality is deliberately *not* required:
/// distributivity and De Morgan are not interning laws, so e.g.
/// ~(a|b) and ~a&~b are distinct nodes of the same language.
testing::AssertionResult sameLanguage(DerivativeEngine &E, Re A, Re B) {
  RegexManager &M = E.regexManager();
  if (A == B)
    return testing::AssertionSuccess();
  if (M.nullable(A) != M.nullable(B))
    return testing::AssertionFailure()
           << M.toString(A) << " vs " << M.toString(B) << ": ε disagrees";
  static const uint32_t Alphabet[] = {'a', 'b', '0', '1', '5',
                                      'z', '!', 0x4E2D};
  std::vector<std::vector<uint32_t>> Words = {{}};
  size_t Start = 0;
  for (int Len = 1; Len <= 3; ++Len) {
    size_t End = Words.size();
    for (size_t I = Start; I != End; ++I)
      for (uint32_t Ch : Alphabet) {
        Words.push_back(Words[I]);
        Words.back().push_back(Ch);
      }
    Start = End;
  }
  for (const auto &W : Words)
    if (E.matches(A, W) != E.matches(B, W))
      return testing::AssertionFailure()
             << M.toString(A) << " vs " << M.toString(B)
             << " disagree on a word of length " << W.size();
  return testing::AssertionSuccess();
}

class TrTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};

  Re re(const std::string &S) { return parseRegexOrDie(M, S); }
};

TEST_F(TrTest, LeafMergingThroughRegexAlgebra) {
  Tr A = T.leaf(re("ab"));
  Tr B = T.leaf(re("cd"));
  // Union of two leaves is one leaf over the regex union.
  Tr U = T.union2(A, B);
  ASSERT_EQ(T.kind(U), TrKind::Leaf);
  EXPECT_EQ(T.node(U).LeafRe, M.union_(re("ab"), re("cd")));
  // ⊥ is the unit, .* absorbs.
  EXPECT_EQ(T.union2(A, T.bot()), A);
  EXPECT_EQ(T.union2(A, T.topLeaf()), T.topLeaf());
  EXPECT_EQ(T.inter2(A, T.topLeaf()), A);
  EXPECT_EQ(T.inter2(A, T.bot()), T.bot());
}

TEST_F(TrTest, IteSimplifications) {
  CharSet D = CharSet::digit();
  Tr A = T.leaf(re("a"));
  Tr B = T.leaf(re("b"));
  EXPECT_EQ(T.ite(CharSet::full(), A, B), A);
  EXPECT_EQ(T.ite(CharSet(), A, B), B);
  EXPECT_EQ(T.ite(D, A, A), A);
  // Directly nested conditionals on the same predicate collapse.
  Tr Nested = T.ite(D, T.ite(D, A, B), B);
  EXPECT_EQ(Nested, T.ite(D, A, B));
}

TEST_F(TrTest, ApplySelectsBranch) {
  CharSet D = CharSet::digit();
  Tr Cond = T.ite(D, T.leaf(re("x")), T.leaf(re("y")));
  EXPECT_EQ(T.apply(Cond, '5'), re("x"));
  EXPECT_EQ(T.apply(Cond, 'q'), re("y"));
}

TEST_F(TrTest, NegationDualOnConditional) {
  // ~if(φ0, 1.*, ⊥) ≡ if(φ0, ~(1.*), .*)  — the Section 2 step.
  CharSet Zero = CharSet::singleton('0');
  Tr D = T.ite(Zero, T.leaf(re("1.*")), T.bot());
  Tr N = T.negate(D);
  ASSERT_EQ(T.kind(N), TrKind::Ite);
  EXPECT_EQ(T.node(N).Cond, Zero);
  EXPECT_EQ(T.node(N).Kids[0], T.leaf(M.complement(re("1.*"))));
  EXPECT_EQ(T.node(N).Kids[1], T.topLeaf());
}

TEST_F(TrTest, NegationIsInvolutive) {
  CharSet D = CharSet::digit();
  Tr X = T.inter2(T.ite(D, T.leaf(re("a*")), T.leaf(re("b"))),
                  T.union2(T.ite(CharSet::singleton('0'), T.bot(),
                                 T.leaf(re("c"))),
                           T.leaf(re("d?e"))));
  EXPECT_EQ(T.negate(T.negate(X)), X);
}

TEST_F(TrTest, NegationAgreesWithApply) {
  // Lemma 4.2 sampled: L((~τ)(a)) = L(~(τ(a))).
  DerivativeEngine E(M, T);
  CharSet D = CharSet::digit();
  Tr X = T.union2(T.ite(D, T.leaf(re("ab")), T.leaf(re("c*"))),
                  T.leaf(re("de")));
  Tr N = T.negate(X);
  for (uint32_t Ch : {uint32_t('0'), uint32_t('z'), uint32_t(0x1F600)})
    EXPECT_TRUE(sameLanguage(E, T.apply(N, Ch),
                             M.complement(T.apply(X, Ch))));
}

TEST_F(TrTest, ConcatDistributesOverStructure) {
  CharSet D = CharSet::digit();
  Re Tail = re("xyz");
  Tr Cond = T.ite(D, T.leaf(re("a")), T.leaf(re("b")));
  Tr CR = T.concatRe(Cond, Tail);
  ASSERT_EQ(T.kind(CR), TrKind::Ite);
  EXPECT_EQ(T.node(CR).Kids[0], T.leaf(M.concat(re("a"), Tail)));
  EXPECT_EQ(T.node(CR).Kids[1], T.leaf(M.concat(re("b"), Tail)));
  // τ · ε = τ, τ · ⊥ = ⊥.
  EXPECT_EQ(T.concatRe(Cond, M.epsilon()), Cond);
  EXPECT_EQ(T.concatRe(Cond, M.empty()), T.bot());
}

TEST_F(TrTest, DnfEliminatesInter) {
  CharSet D = CharSet::digit();
  CharSet L = CharSet::asciiLetter();
  Tr A = T.ite(D, T.topLeaf(), T.leaf(re(".*\\d.*")));
  Tr B = T.ite(L, T.topLeaf(), T.leaf(re(".*[a-zA-Z].*")));
  Tr I = T.inter2(A, B);
  ASSERT_EQ(T.kind(I), TrKind::Inter);
  Tr Dnf = T.dnf(I);
  EXPECT_TRUE(T.isDnf(Dnf));
  // Semantics preserved at sampled characters.
  for (uint32_t Ch : {uint32_t('3'), uint32_t('x'), uint32_t('!')})
    EXPECT_EQ(T.apply(Dnf, Ch), T.apply(I, Ch));
}

TEST_F(TrTest, DnfPrunesContradictoryBranches) {
  // if(φd,·,·) under a path where the character is '0'..'9' already: the
  // inner else-branch is dead and must disappear.
  CharSet D = CharSet::digit();
  CharSet Zero = CharSet::singleton('0');
  Tr Inner = T.ite(D, T.leaf(re("a")), T.leaf(re("b")));
  Tr Outer = T.ite(Zero, Inner, T.leaf(re("c")));
  Tr Dnf = T.dnf(Outer);
  // Under φ0, φd is implied, so the result is if(φ0, a, c).
  EXPECT_EQ(Dnf, T.ite(Zero, T.leaf(re("a")), T.leaf(re("c"))));
}

TEST_F(TrTest, ArcsEnumerateSatisfiableGuards) {
  CharSet Zero = CharSet::singleton('0');
  CharSet D = CharSet::digit();
  Tr X = T.ite(Zero, T.leaf(re("r0")), T.ite(D, T.leaf(re("rd")),
                                             T.leaf(re("rr"))));
  std::vector<TrArc> Arcs = T.arcs(X);
  ASSERT_EQ(Arcs.size(), 3u);
  // Guards are pairwise disjoint along the conditional spine and cover Σ.
  CharSet All;
  for (const TrArc &A : Arcs) {
    EXPECT_FALSE(A.Guard.isEmpty());
    for (const TrArc &B : Arcs)
      if (&A != &B) {
        EXPECT_TRUE(A.Guard.isDisjointFrom(B.Guard));
      }
    All = All.unionWith(A.Guard);
  }
  EXPECT_TRUE(All.isFull());
}

TEST_F(TrTest, ArcsMergeSameTarget) {
  CharSet D = CharSet::digit();
  CharSet L = CharSet::asciiLetter();
  // Same leaf behind two different guards (via a union of conditionals).
  Tr X = T.union2(T.ite(D, T.leaf(re("t")), T.bot()),
                  T.ite(L, T.leaf(re("t")), T.bot()));
  std::vector<TrArc> Arcs = T.arcs(X);
  ASSERT_EQ(Arcs.size(), 1u);
  EXPECT_EQ(Arcs[0].Guard, D.unionWith(L));
  EXPECT_EQ(Arcs[0].Target, re("t"));
}

TEST_F(TrTest, ArcsSkipBotTargets) {
  CharSet D = CharSet::digit();
  Tr X = T.ite(D, T.leaf(re("t")), T.bot());
  std::vector<TrArc> Arcs = T.arcs(X);
  ASSERT_EQ(Arcs.size(), 1u);
  EXPECT_EQ(Arcs[0].Guard, D);
}

TEST_F(TrTest, CollectLeaves) {
  CharSet D = CharSet::digit();
  Tr X = T.union2(T.ite(D, T.leaf(re("a")), T.bot()),
                  T.ite(D, T.leaf(re("b")), T.topLeaf()));
  std::vector<Re> Leaves;
  T.collectLeaves(X, Leaves);
  // Nontrivial terminals only: a and b (⊥ and .* excluded).
  EXPECT_EQ(Leaves.size(), 2u);
  Leaves.clear();
  T.collectLeaves(X, Leaves, /*IncludeTrivial=*/true);
  EXPECT_EQ(Leaves.size(), 4u);
}

TEST_F(TrTest, ToStringNotation) {
  CharSet Zero = CharSet::singleton('0');
  Tr X = T.ite(Zero, T.leaf(re("a")), T.bot());
  EXPECT_EQ(T.toString(X), "if(0, a, [])");
}

/// Random TR generator for the semantic property suite.
class TrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Tr randomTr(RegexManager &M, TrManager &T, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return T.leaf(M.chr(static_cast<uint32_t>('a' + R.below(3))));
    case 1:
      return T.leaf(M.star(M.chr('a')));
    case 2:
      return T.bot();
    default:
      return T.leaf(M.concat(M.pred(CharSet::digit()), M.top()));
    }
  }
  switch (R.below(4)) {
  case 0: {
    CharSet C = R.chance(1, 2) ? CharSet::digit()
                               : CharSet::range('a', 'm');
    Tr A = randomTr(M, T, R, Depth - 1);
    Tr B = randomTr(M, T, R, Depth - 1);
    return T.ite(C, A, B);
  }
  case 1:
    return T.union2(randomTr(M, T, R, Depth - 1),
                    randomTr(M, T, R, Depth - 1));
  case 2:
    return T.inter2(randomTr(M, T, R, Depth - 1),
                    randomTr(M, T, R, Depth - 1));
  default:
    return T.negate(randomTr(M, T, R, Depth - 1));
  }
}

TEST_P(TrPropertyTest, DnfPreservesSemantics) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng R(GetParam());
  for (int I = 0; I != 8; ++I) {
    Tr X = randomTr(M, T, R, 4);
    Tr D = T.dnf(X);
    EXPECT_TRUE(T.isDnf(D));
    for (uint32_t Ch :
         {uint32_t('0'), uint32_t('5'), uint32_t('a'), uint32_t('n'),
          uint32_t('z'), uint32_t('!'), uint32_t(0x4E2D)})
      EXPECT_TRUE(sameLanguage(E, T.apply(D, Ch), T.apply(X, Ch)));
  }
}

TEST_P(TrPropertyTest, NegationDualIsSemanticComplement) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng R(GetParam());
  for (int I = 0; I != 8; ++I) {
    Tr X = randomTr(M, T, R, 4);
    Tr N = T.negate(X);
    EXPECT_EQ(T.negate(N), X);
    for (uint32_t Ch :
         {uint32_t('0'), uint32_t('b'), uint32_t('z'), uint32_t(0x100)})
      EXPECT_TRUE(
          sameLanguage(E, T.apply(N, Ch), M.complement(T.apply(X, Ch))));
  }
}

TEST_P(TrPropertyTest, ArcsAgreeWithApply) {
  RegexManager M;
  TrManager T(M);
  Rng R(GetParam());
  for (int I = 0; I != 10; ++I) {
    Tr X = T.dnf(randomTr(M, T, R, 3));
    std::vector<TrArc> Arcs = T.arcs(X);
    // Every arc's sampled character leads somewhere consistent with apply:
    // the arc target is one of the union branches of τ(a), i.e. the regex
    // union of all matching targets equals apply.
    for (uint32_t Ch : {uint32_t('0'), uint32_t('c'), uint32_t('~')}) {
      std::vector<Re> Matching;
      for (const TrArc &A : Arcs)
        if (A.Guard.contains(Ch))
          Matching.push_back(A.Target);
      EXPECT_EQ(M.unionList(std::move(Matching)), T.apply(X, Ch));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
