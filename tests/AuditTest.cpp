//===- tests/AuditTest.cpp - Term-DAG invariant auditor tests ---------------===//
//
// Two halves:
//
//  - Positive: arenas populated through the public smart-constructor /
//    parser / derivative / solver paths must audit clean — the similarity
//    laws and NNF discipline really are established at construction time.
//
//  - Negative: each violation class must be *detectable*. The managers
//    expose mutableNodeForAudit() for exactly this: we hand-corrupt one
//    interned node the way a buggy interning refactor would, and assert the
//    auditor reports the specific kind. A checker that cannot fail is not
//    checking anything.
//
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"

#include <gtest/gtest.h>

using namespace sbd;
using audit::Report;
using audit::ViolationKind;

namespace {

class AuditTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  /// Runs checkReNode on one node and returns the report.
  Report reNode(Re R) {
    Report Out;
    audit::checkReNode(M, R, Out);
    return Out;
  }

  Report trNode(Tr X) {
    Report Out;
    audit::checkTrNode(T, X, Out);
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Positive: construction paths audit clean
//===----------------------------------------------------------------------===//

TEST_F(AuditTest, FreshArenasAuditClean) {
  Report R = audit::checkAll(T);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.nodesChecked(), 0u);
}

TEST_F(AuditTest, ParsedPatternsAuditClean) {
  // Exercise every constructor: predicates, classes, loops, boolean
  // operators, complement, nested structure.
  const char *Patterns[] = {
      "a",          "abc",           "[a-z0-9]+",     "(ab|cd)*e",
      "a{3,7}b?",   "~(a*b)",        "(ab)+&(a|b)*",  "[^x-z]{2,}",
      "(a|b)(c|d)", "~(~(ab))",      "a*&~(b+)",      "\\d+\\.\\d+",
  };
  for (const char *P : Patterns)
    (void)re(P);
  Report R = audit::checkAll(M);
  EXPECT_TRUE(R.ok()) << "after parsing: " << R.str();
}

TEST_F(AuditTest, DerivativesAndDnfAuditClean) {
  Re R1 = re("(ab|cd)*&~(a*)");
  Re R2 = re("[a-m]{2,5}(x|y)+");
  for (Re R : {R1, R2}) {
    Tr D = E.derivativeDnf(R);
    Report DnfReport;
    audit::checkDnf(T, D, DnfReport);
    EXPECT_TRUE(DnfReport.ok()) << "dnf of " << M.toString(R) << ": "
                                << DnfReport.str();
  }
  Report R = audit::checkAll(T);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST_F(AuditTest, SolvedQueriesAuditClean) {
  RegexSolver S(E);
  const char *Queries[] = {"a{3}b*", "(ab)+&(ba)+", "~(a|b)*c",
                           "([a-f]{2})+&~(ab)*", "x?y?z?&~()"};
  for (const char *Q : Queries)
    (void)S.checkSat(re(Q));
  Report R = audit::checkAll(T);
  EXPECT_TRUE(R.ok()) << "after solving: " << R.str();
  EXPECT_GT(R.nodesChecked(), 20u); // sanity: the walk covered real work
}

TEST_F(AuditTest, CanonicalCharSetsAuditClean) {
  for (const CharSet &S :
       {CharSet::full(), CharSet::digit(), CharSet::word(),
        CharSet::range('a', 'z').unionWith(CharSet::range('0', '9')),
        CharSet::full().minus(CharSet::singleton('q'))}) {
    Report Out;
    audit::checkIntervals(S.ranges(), 0, Out);
    EXPECT_TRUE(Out.ok()) << Out.str();
  }
}

//===----------------------------------------------------------------------===//
// Negative: regex-arena corruptions are detected
//===----------------------------------------------------------------------===//

TEST_F(AuditTest, DetectsStaleReHash) {
  Re R = re("(ab|cd)e");
  ASSERT_TRUE(reNode(R).ok());
  M.mutableNodeForAudit(R).Hash ^= 1;
  EXPECT_GT(reNode(R).count(ViolationKind::ReStaleHash), 0u);
}

TEST_F(AuditTest, DetectsUnsortedInterOperands) {
  Re R = M.inter(re("a+"), re("b+"));
  ASSERT_EQ(M.kind(R), RegexKind::Inter);
  ASSERT_TRUE(reNode(R).ok());
  RegexNode &N = M.mutableNodeForAudit(R);
  std::swap(N.Kids[0], N.Kids[1]);
  EXPECT_GT(reNode(R).count(ViolationKind::ReUnsortedOperands), 0u);
}

TEST_F(AuditTest, DetectsNestedBoolean) {
  Re A = re("a+"), B = re("b+"), C = re("c+");
  Re Inner = M.inter(A, B);
  Re Outer = M.inter(A, C);
  ASSERT_LT(Inner.Id, Outer.Id);
  // Splice the inner AND under the outer AND — the flattening law broken.
  M.mutableNodeForAudit(Outer).Kids[1] = Inner;
  EXPECT_GT(reNode(Outer).count(ViolationKind::ReNestedBoolean), 0u);
}

TEST_F(AuditTest, DetectsDoubleNegation) {
  Re C1 = M.complement(re("a+"));
  Re C2 = M.complement(re("b+"));
  ASSERT_EQ(M.kind(C1), RegexKind::Compl);
  ASSERT_EQ(M.kind(C2), RegexKind::Compl);
  ASSERT_LT(C1.Id, C2.Id);
  M.mutableNodeForAudit(C2).Kids[0] = C1;
  EXPECT_GT(reNode(C2).count(ViolationKind::ReDoubleNegation), 0u);
}

TEST_F(AuditTest, DetectsAbsorbableEmptyInUnion) {
  Re U = M.union_(re("ab"), re("cd"));
  ASSERT_EQ(M.kind(U), RegexKind::Union);
  M.mutableNodeForAudit(U).Kids[0] = M.empty();
  EXPECT_GT(reNode(U).count(ViolationKind::ReAbsorbableChild), 0u);
}

TEST_F(AuditTest, DetectsLeftNestedConcat) {
  Re X = M.concat(re("a"), re("b"));
  Re Y = M.concat(re("a"), re("c"));
  ASSERT_EQ(M.kind(Y), RegexKind::Concat);
  ASSERT_LT(X.Id, Y.Id);
  M.mutableNodeForAudit(Y).Kids[0] = X;
  EXPECT_GT(reNode(Y).count(ViolationKind::ReLeftNestedConcat), 0u);
}

TEST_F(AuditTest, DetectsBadNullableCache) {
  Re R = M.concat(re("a"), re("b")); // not nullable
  ASSERT_FALSE(M.nullable(R));
  M.mutableNodeForAudit(R).Nullable = true;
  EXPECT_GT(reNode(R).count(ViolationKind::ReBadNullable), 0u);
}

TEST_F(AuditTest, DetectsBadSizeCache) {
  Re R = M.concat(re("a"), re("b"));
  M.mutableNodeForAudit(R).Size += 5;
  EXPECT_GT(reNode(R).count(ViolationKind::ReBadMetrics), 0u);
}

TEST_F(AuditTest, DetectsBadTopology) {
  Re R = M.concat(re("a"), re("b"));
  RegexNode &N = M.mutableNodeForAudit(R);
  N.Kids[1] = Re{R.Id + 100}; // forward reference: child after parent
  EXPECT_GT(reNode(R).count(ViolationKind::ReBadTopology), 0u);
}

TEST_F(AuditTest, DetectsBadLoopBounds) {
  Re L = M.loop(re("a"), 2, 5);
  ASSERT_EQ(M.kind(L), RegexKind::Loop);
  M.mutableNodeForAudit(L).LoopMin = 6; // Min > Max
  EXPECT_GT(reNode(L).count(ViolationKind::ReBadLoopBounds), 0u);
}

TEST_F(AuditTest, DetectsUnmergedPredicates) {
  // A well-formed union of two non-predicate operands, rewired to hold two
  // predicate leaves — the character-algebra merging law broken.
  Re A = re("a"), B = re("b");
  Re U = M.union_(re("a+"), re("b+"));
  ASSERT_EQ(M.kind(U), RegexKind::Union);
  RegexNode &N = M.mutableNodeForAudit(U);
  N.Kids[0] = A < B ? A : B;
  N.Kids[1] = A < B ? B : A;
  EXPECT_GT(reNode(U).count(ViolationKind::ReUnmergedPreds), 0u);
}

TEST_F(AuditTest, ArenaScanDetectsStructuralDuplicate) {
  Re A = re("a"), B = re("b"), C = re("c");
  Re X = M.concat(A, B);
  Re Y = M.concat(A, C);
  ASSERT_NE(X.Id, Y.Id);
  // Make Y structurally identical to X: hash-cons canonicality broken.
  RegexNode &N = M.mutableNodeForAudit(Y);
  N.Kids[1] = B;
  N.Hash = M.mutableNodeForAudit(X).Hash;
  Report R = audit::checkRegexArena(M);
  EXPECT_GT(R.count(ViolationKind::ReDuplicateNode), 0u) << R.str();
}

//===----------------------------------------------------------------------===//
// Negative: character-algebra canonical form
//===----------------------------------------------------------------------===//

TEST_F(AuditTest, DetectsInvertedInterval) {
  Report Out;
  audit::checkIntervals({{'z', 'a'}}, 0, Out);
  EXPECT_GT(Out.count(ViolationKind::CsInvertedInterval), 0u);
}

TEST_F(AuditTest, DetectsUnsortedIntervals) {
  Report Out;
  audit::checkIntervals({{'m', 'p'}, {'a', 'c'}}, 0, Out);
  EXPECT_GT(Out.count(ViolationKind::CsUnsortedIntervals), 0u);
}

TEST_F(AuditTest, DetectsOverlappingIntervals) {
  Report Out;
  audit::checkIntervals({{'a', 'm'}, {'k', 'z'}}, 0, Out);
  EXPECT_GT(Out.count(ViolationKind::CsOverlappingIntervals), 0u);
}

TEST_F(AuditTest, DetectsAdjacentIntervals) {
  Report Out;
  audit::checkIntervals({{'a', 'm'}, {'n', 'z'}}, 0, Out);
  EXPECT_GT(Out.count(ViolationKind::CsAdjacentIntervals), 0u);
}

TEST_F(AuditTest, DetectsOutOfDomainInterval) {
  Report Out;
  audit::checkIntervals({{0x10FFFF, 0x110000}}, 0, Out);
  EXPECT_GT(Out.count(ViolationKind::CsOutOfDomain), 0u);
}

TEST_F(AuditTest, AcceptsCanonicalIntervals) {
  Report Out;
  audit::checkIntervals({{'a', 'm'}, {'o', 'z'}, {0x100, 0x10FFFF}}, 0, Out);
  EXPECT_TRUE(Out.ok()) << Out.str();
}

//===----------------------------------------------------------------------===//
// Negative: transition-regex corruptions are detected
//===----------------------------------------------------------------------===//

TEST_F(AuditTest, DetectsStaleTrHash) {
  Tr X = T.ite(CharSet::range('a', 'f'), T.leaf(re("x+")), T.bot());
  ASSERT_EQ(T.kind(X), TrKind::Ite);
  ASSERT_TRUE(trNode(X).ok());
  T.mutableNodeForAudit(X).Hash ^= 1;
  EXPECT_GT(trNode(X).count(ViolationKind::TrStaleHash), 0u);
}

TEST_F(AuditTest, DetectsTrBadArity) {
  Tr X = T.ite(CharSet::range('a', 'f'), T.leaf(re("x+")), T.bot());
  ASSERT_EQ(T.kind(X), TrKind::Ite);
  T.mutableNodeForAudit(X).Kids.pop_back(); // one-armed ite
  EXPECT_GT(trNode(X).count(ViolationKind::TrBadArity), 0u);
}

TEST_F(AuditTest, DetectsTrUnsortedOperands) {
  Tr A = T.ite(CharSet::singleton('a'), T.leaf(re("p")), T.bot());
  Tr B = T.ite(CharSet::singleton('b'), T.leaf(re("q")), T.bot());
  Tr U = T.union2(A, B);
  ASSERT_EQ(T.kind(U), TrKind::Union);
  TrNode &N = T.mutableNodeForAudit(U);
  ASSERT_EQ(N.Kids.size(), 2u);
  std::swap(N.Kids[0], N.Kids[1]);
  EXPECT_GT(trNode(U).count(ViolationKind::TrUnsortedOperands), 0u);
}

TEST_F(AuditTest, DetectsTrNestedBoolean) {
  Tr A = T.ite(CharSet::singleton('a'), T.leaf(re("p")), T.bot());
  Tr B = T.ite(CharSet::singleton('b'), T.leaf(re("q")), T.bot());
  Tr C = T.ite(CharSet::singleton('c'), T.leaf(re("r")), T.bot());
  Tr Inner = T.union2(A, B);
  Tr Outer = T.union2(A, C);
  ASSERT_EQ(T.kind(Outer), TrKind::Union);
  ASSERT_LT(Inner.Id, Outer.Id);
  T.mutableNodeForAudit(Outer).Kids[1] = Inner;
  EXPECT_GT(trNode(Outer).count(ViolationKind::TrNestedBoolean), 0u);
}

TEST_F(AuditTest, DetectsUnsatIteGuard) {
  Tr X = T.ite(CharSet::range('a', 'f'), T.leaf(re("x+")), T.bot());
  ASSERT_EQ(T.kind(X), TrKind::Ite);
  T.mutableNodeForAudit(X).Cond = CharSet(); // ⊥ guard
  EXPECT_GT(trNode(X).count(ViolationKind::TrUnsatIteGuard), 0u);
}

TEST_F(AuditTest, DetectsTrivialIteEqualBranches) {
  Tr L = T.leaf(re("x+"));
  Tr X = T.ite(CharSet::range('a', 'f'), L, T.bot());
  ASSERT_EQ(T.kind(X), TrKind::Ite);
  TrNode &N = T.mutableNodeForAudit(X);
  N.Kids[1] = N.Kids[0];
  EXPECT_GT(trNode(X).count(ViolationKind::TrTrivialIte), 0u);
}

TEST_F(AuditTest, DnfCheckDetectsInterNode) {
  Tr A = T.ite(CharSet::singleton('a'), T.leaf(re("p")), T.bot());
  Tr B = T.ite(CharSet::singleton('b'), T.leaf(re("q")), T.bot());
  Tr U = T.union2(A, B);
  ASSERT_EQ(T.kind(U), TrKind::Union);
  T.mutableNodeForAudit(U).Kind = TrKind::Inter;
  Report Out;
  audit::checkDnf(T, U, Out);
  EXPECT_GT(Out.count(ViolationKind::TrNotDnf), 0u);
}

TEST_F(AuditTest, DnfCheckDetectsUnsatBranch) {
  // Inner tests [a-f]; outer tests the disjoint [x-z] and then routes into
  // the inner conditional: the inner then-branch's accumulated path
  // condition is [x-z] ∩ [a-f] = ⊥, so the branch is not clean.
  Tr Inner = T.ite(CharSet::range('a', 'f'), T.leaf(re("p")), T.bot());
  Tr Outer = T.ite(CharSet::range('x', 'z'), T.leaf(re("q")), T.bot());
  ASSERT_EQ(T.kind(Outer), TrKind::Ite);
  ASSERT_LT(Inner.Id, Outer.Id);
  T.mutableNodeForAudit(Outer).Kids[0] = Inner;
  Report Out;
  audit::checkDnf(T, Outer, Out);
  EXPECT_GT(Out.count(ViolationKind::TrUnsatBranch), 0u);
}

TEST_F(AuditTest, TrArenaScanDetectsStructuralDuplicate) {
  Tr L1 = T.leaf(re("p+"));
  Tr L2 = T.leaf(re("q+"));
  ASSERT_NE(L1.Id, L2.Id);
  TrNode &N = T.mutableNodeForAudit(L2);
  N.LeafRe = T.node(L1).LeafRe;
  Report R = audit::checkTrArena(T);
  EXPECT_GT(R.count(ViolationKind::TrDuplicateNode), 0u) << R.str();
}

//===----------------------------------------------------------------------===//
// Report mechanics
//===----------------------------------------------------------------------===//

TEST_F(AuditTest, ReportCountsStayExactPastDetailCap) {
  Report R;
  for (uint32_t I = 0; I != Report::MaxDetailed + 50; ++I)
    R.add(ViolationKind::ReStaleHash, I, "x");
  EXPECT_EQ(R.total(), Report::MaxDetailed + 50);
  EXPECT_EQ(R.violations().size(), Report::MaxDetailed);
}

TEST_F(AuditTest, ReportMergePreservesCounts) {
  Report A, B;
  A.add(ViolationKind::ReStaleHash, 1, "x");
  A.noteChecked(10);
  B.add(ViolationKind::TrNotDnf, 2, "y");
  B.noteChecked(5);
  A += B;
  EXPECT_EQ(A.total(), 2u);
  EXPECT_EQ(A.count(ViolationKind::ReStaleHash), 1u);
  EXPECT_EQ(A.count(ViolationKind::TrNotDnf), 1u);
  EXPECT_EQ(A.nodesChecked(), 15u);
}

TEST_F(AuditTest, EveryViolationKindHasAName) {
  for (size_t I = 0; I != audit::NumViolationKinds; ++I)
    EXPECT_STRNE(audit::kindName(static_cast<ViolationKind>(I)), "?");
}

//===----------------------------------------------------------------------===//
// SBD_AUDIT builds: hooks feed the obs registry
//===----------------------------------------------------------------------===//

#if SBD_AUDIT && SBD_OBS
TEST_F(AuditTest, AuditHooksFeedObsRegistry) {
  obs::MetricsRegistry::global().reset();
  RegexSolver S(E);
  (void)S.checkSat(re("(ab|cd)*&~(a*)"));
  obs::MetricShard Snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(Snap.get(obs::Counter::AuditNodesChecked), 0u);
  EXPECT_EQ(Snap.get(obs::Counter::AuditViolations), 0u);
  obs::MetricsRegistry::global().reset();
}
#endif

} // namespace
