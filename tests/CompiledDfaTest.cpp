//===- tests/CompiledDfaTest.cpp - Compiled state-major DFA tests -----------===//
//
// Coverage for the compiled serving path (compile/CompiledDfa.h): packed
// table equivalence against DerivativeEngine::derivativeOfWord on a seed
// corpus, promotion-threshold boundaries in CachedMatcher, fallback
// correctness when the compile budget is hopeless, prefilter soundness on
// inputs with and without the required byte, and the audit checker that
// validates packed rows against fresh derivative rows.
//
//===----------------------------------------------------------------------===//

#include "compile/CompiledDfa.h"

#include "core/CachedMatcher.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class CompiledDfaTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  static std::vector<uint32_t> cps(const std::string &Ascii) {
    std::vector<uint32_t> Out;
    for (char C : Ascii)
      Out.push_back(static_cast<uint8_t>(C));
    return Out;
  }
};

/// Hand-picked patterns covering every constructor the compiler must
/// freeze: literals, classes, star, bounded loops, union, intersection,
/// complement, the empty language, and non-ASCII predicates.
const char *const SeedCorpus[] = {
    "a*b",
    "(a|b)*abb",
    "(ab|ba){2}",
    ".*(ab|ba){2}.*\\d.*",
    "(.*\\d.*)&~(.*01.*)",
    "~(a*)",
    "~(.*)",
    "[a-c]{1,3}",
    "a?b?c?",
    "(foo|bar)*",
    "~(.*ab.*)&[a-z]*",
    "[\\u4E00-\\u9FFF]+x?",
};

TEST_F(CompiledDfaTest, TableEquivalenceOnSeedCorpus) {
  // Draw pool: covers every corpus pattern's predicates plus bystanders
  // and a non-ASCII code point (CJK, inside the [一-鿿] class).
  const uint32_t Pool[] = {'a', 'b', 'c', 'd', 'f', 'o', 'r', 'x',
                           '0', '1', '7', 'z', 0x4E2D};
  Rng Rand(99);
  for (const char *Pat : SeedCorpus) {
    Re R = re(Pat);
    std::optional<CompiledDfa> D = CompiledDfa::compile(E, R);
    ASSERT_TRUE(D.has_value()) << Pat;
    EXPECT_EQ(D->auditTable(E), 0u) << Pat;
    for (int I = 0; I != 200; ++I) {
      std::vector<uint32_t> W(Rand.below(13));
      for (uint32_t &C : W)
        C = Pool[Rand.below(sizeof(Pool) / sizeof(Pool[0]))];
      // The specification route: membership is nullability of the word
      // derivative (Theorem 3.2 flavor), computed without any compression.
      bool Want = M.nullable(E.derivativeOfWord(R, W));
      EXPECT_EQ(D->matches(W), Want) << Pat << " on " << toUtf8(W);
      EXPECT_EQ(D->matches(toUtf8(W)), Want) << Pat << " on " << toUtf8(W);
    }
  }
}

TEST_F(CompiledDfaTest, MinimizationMergesNerodeEquivalentStates) {
  // The raw derivative closure of the bench pattern has 20 syntactically
  // distinct states; its minimal DFA has 12. Moore refinement must find
  // exactly that (and thereby put the table inside the single-shuffle
  // Sheng budget), and the merged table must still answer like the
  // specification route — auditTable's pair traversal checks the
  // language-level agreement entry by entry.
  Re R = re(".*(ab|ba){2}.*\\d.*");
  std::optional<CompiledDfa> D = CompiledDfa::compile(E, R);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->numStates(), 12u);
  EXPECT_TRUE(D->shengEligible());
  EXPECT_EQ(D->auditTable(E), 0u);
  // A language-empty pattern that is not syntactically empty folds into
  // the dead sink entirely.
  std::optional<CompiledDfa> Dead = CompiledDfa::compile(E, re("a&b"));
  ASSERT_TRUE(Dead.has_value());
  EXPECT_EQ(Dead->numStates(), 1u);
  EXPECT_FALSE(Dead->matches(std::string("a")));
}

TEST_F(CompiledDfaTest, EmptyLanguageCompilesToDeadStart) {
  std::optional<CompiledDfa> D = CompiledDfa::compile(E, re("~(.*)"));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->numStates(), 1u); // just the dead sink, which is the start
  EXPECT_FALSE(D->matches(std::string()));
  EXPECT_FALSE(D->matches(std::string("a")));
}

TEST_F(CompiledDfaTest, BudgetOverflowDeclinesInsteadOfTruncating) {
  // ~2^10 reachable states: a 16-state closure cap must refuse, and so
  // must a byte budget smaller than one row.
  CompiledDfaOptions Small;
  Small.MaxStates = 16;
  EXPECT_FALSE(CompiledDfa::compile(E, re(".*a.{10}"), Small).has_value());
  CompiledDfaOptions Tiny;
  Tiny.MaxTableBytes = 4;
  EXPECT_FALSE(CompiledDfa::compile(E, re("a*b"), Tiny).has_value());
}

TEST_F(CompiledDfaTest, SimdAndScalarKernelsAgree) {
  // A <= 16-state pattern is Sheng-eligible: on SSSE3/NEON hosts
  // matches(string) runs the shuffle kernel while matches(word) is always
  // the scalar walk — the two must agree everywhere, including long
  // inputs (block boundaries) and embedded non-ASCII bytes. The {3}
  // variant minimizes to 22 states and rides along to cross-check the
  // split-shuffle wide kernel against the word walk the same way.
  std::optional<CompiledDfa> Small = CompiledDfa::compile(E, re("(a|b)*abb"));
  std::optional<CompiledDfa> Wide =
      CompiledDfa::compile(E, re(".*(ab|ba){3}.*\\d.*"));
  ASSERT_TRUE(Small && Wide);
  EXPECT_TRUE(Small->shengEligible());
  EXPECT_FALSE(Wide->shengEligible());
  EXPECT_TRUE(Wide->shengWideEligible()); // 22 states: split-shuffle kernel
  const uint32_t Pool[] = {'a', 'b', 'x', '7', 0xE9, 0x4E2D};
  Rng Rand(5);
  for (int I = 0; I != 200; ++I) {
    std::vector<uint32_t> W(Rand.below(200));
    for (uint32_t &C : W)
      C = Pool[Rand.below(sizeof(Pool) / sizeof(Pool[0]))];
    EXPECT_EQ(Small->matches(toUtf8(W)), Small->matches(W)) << toUtf8(W);
    EXPECT_EQ(Wide->matches(toUtf8(W)), Wide->matches(W)) << toUtf8(W);
  }
}

TEST_F(CompiledDfaTest, PrefilterSoundness) {
  // Every state of .*z\d except the post-z ones self-loops on all ASCII
  // but 'z', so the scanner skims. Verdicts must be identical with the
  // prefilter on and off, with and without the required byte present.
  Re R = re(".*z\\d");
  CompiledDfaOptions On, Off;
  Off.EnablePrefilter = false;
  std::optional<CompiledDfa> DOn = CompiledDfa::compile(E, R, On);
  std::optional<CompiledDfa> DOff = CompiledDfa::compile(E, R, Off);
  ASSERT_TRUE(DOn && DOff);

  std::string NoZ(300, 'a');
  std::string LateZ = NoZ + "z7";
  std::string EarlyZ = "z7" + NoZ;
  std::string MultiZ = "zz" + NoZ + "z9";
  std::string NonAscii = "\xC3\xA9" + NoZ + "z3"; // é then the hit
  for (const std::string &S : {NoZ, LateZ, EarlyZ, MultiZ, NonAscii}) {
    bool Want = E.matches(R, S);
    EXPECT_EQ(DOn->matches(S), Want) << S.substr(0, 8);
    EXPECT_EQ(DOff->matches(S), Want) << S.substr(0, 8);
  }
#if SBD_OBS
  // The skim must actually engage: a long no-hit input is mostly skipped.
  obs::MetricShard Before = obs::MetricsRegistry::global().snapshot();
  (void)DOn->matches(NoZ);
  obs::MetricShard After = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(After.since(Before).get(obs::Counter::CompiledPrefilterSkips),
            200u);
#endif
}

TEST_F(CompiledDfaTest, PromotionThresholdBoundary) {
  CachedMatcher::Options O;
  O.PromoteAfterChars = 10;
  CachedMatcher Mt(E, re("a*b"), O);
  EXPECT_TRUE(Mt.matches(std::string("aaab"))); // 4 chars fed
  EXPECT_FALSE(Mt.matches(std::string("aaaaa"))); // 9 chars fed
  EXPECT_FALSE(Mt.promoted());
  // The call that reaches the threshold is already served compiled.
  EXPECT_TRUE(Mt.matches(std::string("b"))); // 10 chars fed
  EXPECT_TRUE(Mt.promoted());
  ASSERT_NE(Mt.compiled(), nullptr);
  EXPECT_EQ(Mt.compiled()->auditTable(E), 0u);
  // Verdicts are unchanged after the swap.
  EXPECT_TRUE(Mt.matches(std::string("aab")));
  EXPECT_FALSE(Mt.matches(std::string("ba")));
}

TEST_F(CompiledDfaTest, PromotionDisabledAtZero) {
  CachedMatcher::Options O;
  O.PromoteAfterChars = 0;
  CachedMatcher Mt(E, re("a*b"), O);
  for (int I = 0; I != 64; ++I)
    (void)Mt.matches(std::string("aaaaaaaaaaaaaaab"));
  EXPECT_FALSE(Mt.promoted());
}

TEST_F(CompiledDfaTest, FallbackOnHopelessBudgetStaysLazyAndCorrect) {
  // Promotion fires on the first word but the compile budget cannot hold
  // the ~2^10-state closure: the matcher must take the fallback path once,
  // keep the bounded lazy cache (including eviction under the tiny cap),
  // and stay bit-identical to the uncompressed engine.
  Re R = re(".*a.{10}");
  CachedMatcher::Options O;
  O.MaxStates = 48;
  O.PromoteAfterChars = 1;
  O.CompileMaxStates = 16;
  CachedMatcher Mt(E, R, O);

  Rng Rand(21);
  for (int I = 0; I != 120; ++I) {
    std::vector<uint32_t> W(Rand.below(24));
    for (uint32_t &C : W)
      C = Rand.below(2) ? 'a' : 'x';
    EXPECT_EQ(Mt.matches(W), E.matches(R, W));
  }
  EXPECT_FALSE(Mt.promoted());
  EXPECT_GT(Mt.evictions(), 0u); // the lazy path kept evicting as before
}

#if SBD_OBS
TEST_F(CompiledDfaTest, PromotionAndFallbackCounters) {
  obs::MetricShard Before = obs::MetricsRegistry::global().snapshot();
  {
    CachedMatcher::Options O;
    O.PromoteAfterChars = 1;
    CachedMatcher Mt(E, re("a*b"), O);
    (void)Mt.matches(std::string("ab"));
    EXPECT_TRUE(Mt.promoted());

    CachedMatcher::Options F;
    F.PromoteAfterChars = 1;
    F.CompileMaxStates = 2;
    CachedMatcher Fb(E, re(".*a.{10}"), F);
    (void)Fb.matches(std::string("xaxxxxxxxxxx"));
    EXPECT_FALSE(Fb.promoted());
  }
  obs::MetricShard D = obs::MetricsRegistry::global().snapshot().since(Before);
  EXPECT_GE(D.get(obs::Counter::CompiledPromotions), 1u);
  EXPECT_GE(D.get(obs::Counter::CompiledFallbacks), 1u);
  EXPECT_GT(D.get(obs::Counter::CompiledCharsScanned), 0u);
}
#endif

TEST_F(CompiledDfaTest, AuditDetectsCorruptedEntry) {
  // Mirrors CachedMatcherTest.AuditDetectsCorruptedRow: a healthy table
  // audits clean; repointing the start state's row at itself must be
  // flagged by the independent δdnf re-derivation. (State id 1 is always
  // the pattern for a nonempty language — id 0 is the dead sink.)
  std::optional<CompiledDfa> D = CompiledDfa::compile(E, re("(a|b)*abb"));
  ASSERT_TRUE(D.has_value());
  ASSERT_EQ(D->auditTable(E), 0u);
  for (uint16_t C = 0; C != D->numClasses(); ++C)
    D->corruptEntryForTest(1, C, 1);
  EXPECT_GT(D->auditTable(E), 0u);
}

TEST_F(CompiledDfaTest, SolverRoutesMembershipThroughPromotedPool) {
  RegexSolver S(E);
  Re R = re("(a|b)*abb");
  std::vector<uint32_t> Yes = cps("aababb"), No = cps("abba");
  // Repeated checks against the same regex share one pooled matcher; feed
  // enough characters to cross the pool's promotion clock and verify the
  // answers stay put across the swap.
  for (int I = 0; I != 200; ++I) {
    EXPECT_TRUE(S.matchesWord(R, Yes));
    EXPECT_FALSE(S.matchesWord(R, No));
  }
}

} // namespace
