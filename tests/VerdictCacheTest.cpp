//===- tests/VerdictCacheTest.cpp - Cross-query verdict cache tests ----------===//
///
/// \file
/// Unit and integration tests for the canonical verdict cache (DESIGN.md
/// §15): key canonicality (print → reparse round-trip), bounded capacity
/// with least-recently-hit eviction, JSONL persistence, and — through the
/// portfolio — the untrusted-cache revalidation contract: a poisoned Sat
/// witness must surface as a hard error, never a silent re-solve.
///
//===----------------------------------------------------------------------===//

#include "cache/VerdictCache.h"

#include "core/Derivatives.h"
#include "portfolio/Portfolio.h"
#include "re/RegexParser.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace sbd;
using namespace sbd::cache;

namespace {

class VerdictCacheTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};

  Re parse(const std::string &P) { return parseRegexOrDie(M, P); }

  std::string key(const std::string &P, const SolveOptions &Opts = {}) {
    return canonicalVerdictKey(M, parse(P), Opts);
  }
};

TEST_F(VerdictCacheTest, LookupMissThenInsertThenHit) {
  VerdictCache C(VerdictCache::Config{64});
  std::string K = key("ab*c");
  EXPECT_FALSE(C.lookup(K).has_value());
  C.insert(K, {true, {'a', 'c'}});
  auto Hit = C.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(Hit->Sat);
  EXPECT_EQ(Hit->Witness, (std::vector<uint32_t>{'a', 'c'}));
  VerdictCacheCounters N = C.counters();
  EXPECT_EQ(N.Hits, 1u);
  EXPECT_EQ(N.Misses, 1u);
  EXPECT_EQ(N.Inserts, 1u);
  EXPECT_EQ(N.Size, 1u);
  EXPECT_DOUBLE_EQ(N.hitRate(), 0.5);
}

TEST_F(VerdictCacheTest, EmptyKeysAreRejected) {
  VerdictCache C;
  C.insert("", {false, {}});
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.lookup("").has_value());
}

/// The key law behind cross-arena sharing: printing the hash-consed term
/// and reparsing it into a *fresh* arena must produce the identical key —
/// canonical prints, not arena pointers, are the cache identity.
TEST_F(VerdictCacheTest, KeyRoundTripsThroughPrintAndReparse) {
  const char *Patterns[] = {
      "ab*c",
      "(a|b)&~(c)",
      "~((ab)*)&[a-z]{2,5}",
      "(a|())(b|c)*&~(d?)",
  };
  for (const char *P : Patterns) {
    Re R = parse(P);
    SolveOptions Opts;
    Opts.MaxStates = 123;
    std::string K1 = canonicalVerdictKey(M, R, Opts);
    ASSERT_FALSE(K1.empty());

    RegexManager M2;
    Re R2 = parseRegexOrDie(M2, M.toString(R));
    std::string K2 = canonicalVerdictKey(M2, R2, Opts);
    EXPECT_EQ(K1, K2) << "key not canonical across arenas for " << P;
  }
}

TEST_F(VerdictCacheTest, KeyIncludesBudgetAndStrategyButNotDeadline) {
  Re R = parse("a*b");
  SolveOptions A;
  SolveOptions B;
  B.TimeoutMs = 5000; // deadline must NOT split the key space
  EXPECT_EQ(canonicalVerdictKey(M, R, A), canonicalVerdictKey(M, R, B));

  SolveOptions C;
  C.MaxStates = 7; // a tighter state budget can change the verdict
  EXPECT_NE(canonicalVerdictKey(M, R, A), canonicalVerdictKey(M, R, C));

  SolveOptions D;
  D.Strategy = SearchStrategy::Dfs; // DFS finds different witnesses
  EXPECT_NE(canonicalVerdictKey(M, R, A), canonicalVerdictKey(M, R, D));
}

TEST_F(VerdictCacheTest, OversizedKeysAreSkipped) {
  Re R = parse("(abcdefghij){3}");
  EXPECT_TRUE(canonicalVerdictKey(M, R, SolveOptions{}, 8).empty());
  EXPECT_FALSE(canonicalVerdictKey(M, R, SolveOptions{}).empty());
}

TEST_F(VerdictCacheTest, InsertOverwritesExistingEntry) {
  VerdictCache C;
  std::string K = key("a|b");
  C.insert(K, {true, {'a'}});
  C.insert(K, {true, {'b'}});
  EXPECT_EQ(C.size(), 1u);
  auto Hit = C.lookup(K);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Witness, (std::vector<uint32_t>{'b'}));
}

/// Capacity is bounded and overflow evicts the least-recently-hit entry of
/// the full shard: a just-probed entry must survive an insert storm that
/// evicts its never-probed siblings.
TEST_F(VerdictCacheTest, EvictionIsBoundedAndLeastRecentlyHit) {
  // Capacity 64 with 16 shards → four entries per shard: small enough to
  // force evictions quickly, large enough that recency can protect an
  // entry from its shard-mates.
  VerdictCache C(VerdictCache::Config{64});
  std::vector<std::string> Keys;
  for (int I = 0; I < 512; ++I)
    Keys.push_back("k" + std::to_string(I) + "|synthetic");
  for (const auto &K : Keys)
    C.insert(K, {false, {}});
  EXPECT_LE(C.size(), 64u);
  VerdictCacheCounters N = C.counters();
  EXPECT_EQ(N.Inserts, Keys.size());
  EXPECT_GE(N.Evictions, Keys.size() - 64);

  // Recency: hit one survivor, then hammer its shard with fresh keys. The
  // probed entry must outlive entries that were never hit.
  std::string Survivor;
  for (const auto &K : Keys)
    if (C.lookup(K).has_value()) {
      Survivor = K;
      break;
    }
  ASSERT_FALSE(Survivor.empty());
  size_t Evicted = 0;
  for (int I = 0; I < 512 && Evicted < 64; ++I) {
    std::string Fresh = "fresh" + std::to_string(I);
    C.insert(Fresh, {false, {}});
    if (C.counters().Evictions > N.Evictions + Evicted)
      ++Evicted;
    // Keep the survivor's recency ahead of the insert ticks.
    ASSERT_TRUE(C.lookup(Survivor).has_value())
        << "least-recently-hit eviction removed the most-recently-hit entry";
  }
  EXPECT_GT(Evicted, 0u);
}

TEST_F(VerdictCacheTest, ClearDropsEntriesButKeepsCounters) {
  VerdictCache C;
  C.insert(key("a"), {true, {'a'}});
  C.insert(key("b"), {true, {'b'}});
  ASSERT_EQ(C.size(), 2u);
  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.counters().Inserts, 2u);
  EXPECT_FALSE(C.lookup(key("a")).has_value());
}

TEST_F(VerdictCacheTest, JsonlSaveLoadRoundTrip) {
  std::string Path =
      ::testing::TempDir() + "/verdict_cache_roundtrip.jsonl";
  VerdictCache C;
  // Keys with JSON-hostile characters: quotes, backslashes, newlines.
  std::string Tricky = "pat\"quote\\back\nline\ttab";
  C.insert(key("ab*c"), {true, {'a', 'c'}});
  C.insert(key("~(a)&b"), {false, {}});
  C.insert(Tricky, {true, {0x10FFFF, 0, 'x'}});
  ASSERT_TRUE(C.save(Path));

  VerdictCache D;
  EXPECT_EQ(D.load(Path), 3);
  EXPECT_EQ(D.size(), 3u);
  auto Sat = D.lookup(key("ab*c"));
  ASSERT_TRUE(Sat.has_value());
  EXPECT_TRUE(Sat->Sat);
  EXPECT_EQ(Sat->Witness, (std::vector<uint32_t>{'a', 'c'}));
  auto Unsat = D.lookup(key("~(a)&b"));
  ASSERT_TRUE(Unsat.has_value());
  EXPECT_FALSE(Unsat->Sat);
  auto T = D.lookup(Tricky);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->Witness, (std::vector<uint32_t>{0x10FFFF, 0, 'x'}));
  std::remove(Path.c_str());
}

TEST_F(VerdictCacheTest, LoadSkipsMalformedLinesAndMissingFileIsAnError) {
  std::string Path = ::testing::TempDir() + "/verdict_cache_malformed.jsonl";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "{\"key\": \"good\", \"status\": \"unsat\"}\n"
        << "not json at all\n"
        << "{\"key\": \"half\n"
        << "{\"key\": \"good2\", \"status\": \"sat\", \"witness\": [97, 98]}\n";
  }
  VerdictCache C;
  EXPECT_EQ(C.load(Path), 2);
  EXPECT_TRUE(C.lookup("good").has_value());
  ASSERT_TRUE(C.lookup("good2").has_value());
  EXPECT_EQ(C.lookup("good2")->Witness, (std::vector<uint32_t>{97, 98}));
  std::remove(Path.c_str());

  EXPECT_EQ(C.load(::testing::TempDir() + "/definitely_missing.jsonl"), -1);
}

/// Portfolio integration: the second identical query is answered from the
/// cache (engine tag VerdictCache), with the identical verdict and witness.
TEST_F(VerdictCacheTest, PortfolioServesWarmHitWithIdenticalVerdict) {
  VerdictCache C;
  portfolio::PortfolioSolver P(Solver);
  P.setVerdictCache(&C);
  Re R = parse("(ab|cd)*ef&~(x)");

  SolveResult Cold = P.checkSat(R);
  ASSERT_EQ(Cold.Status, SolveStatus::Sat);
  EXPECT_NE(Cold.Stats.Engine, SolveEngine::VerdictCache);
  EXPECT_EQ(C.counters().Inserts, 1u);

  SolveResult Warm = P.checkSat(R);
  EXPECT_EQ(Warm.Status, SolveStatus::Sat);
  EXPECT_EQ(Warm.Witness, Cold.Witness);
  EXPECT_EQ(Warm.Stats.Engine, SolveEngine::VerdictCache);
  EXPECT_EQ(C.counters().Hits, 1u);
}

TEST_F(VerdictCacheTest, UnsatVerdictsAreCachedToo) {
  VerdictCache C;
  portfolio::PortfolioSolver P(Solver);
  P.setVerdictCache(&C);
  Re R = parse("a&b"); // distinct singletons: provably empty
  ASSERT_EQ(P.checkSat(R).Status, SolveStatus::Unsat);
  SolveResult Warm = P.checkSat(R);
  EXPECT_EQ(Warm.Status, SolveStatus::Unsat);
  EXPECT_EQ(Warm.Stats.Engine, SolveEngine::VerdictCache);
}

/// The negative test of the trust model: hand-corrupt the cached witness
/// and prove the revalidation layer catches it as a HARD error — verdict
/// Unknown with CacheRevalidationFailed, audit counters bumped, poisoned
/// entry dropped — and never silently re-solves.
TEST_F(VerdictCacheTest, CorruptedWitnessIsAHardErrorNeverASilentResolve) {
  VerdictCache C;
  portfolio::PortfolioSolver P(Solver);
  P.setVerdictCache(&C);
  Re R = parse("ab*c");
  ASSERT_EQ(P.checkSat(R).Status, SolveStatus::Sat);

  std::string K = canonicalVerdictKey(M, R, SolveOptions{});
  ASSERT_TRUE(C.corruptWitnessForTest(K));

  uint64_t AuditBefore = obs::MetricsRegistry::global().snapshot().get(
      obs::Counter::AuditViolations);
  SolveResult Hit = P.checkSat(R);
  EXPECT_EQ(Hit.Status, SolveStatus::Unknown);
  EXPECT_EQ(Hit.Stop, StopReason::CacheRevalidationFailed);
  EXPECT_NE(Hit.Note.find("revalidation"), std::string::npos);
  EXPECT_EQ(C.counters().RevalidationFailures, 1u);
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().get(
                obs::Counter::AuditViolations),
            AuditBefore + 1);

  // The poisoned entry is gone: the next query re-solves cold and repairs
  // the cache with a genuine witness.
  SolveResult Repaired = P.checkSat(R);
  EXPECT_EQ(Repaired.Status, SolveStatus::Sat);
  EXPECT_NE(Repaired.Stats.Engine, SolveEngine::VerdictCache);
  SolveResult Warm = P.checkSat(R);
  EXPECT_EQ(Warm.Stats.Engine, SolveEngine::VerdictCache);
  EXPECT_EQ(Warm.Witness, Repaired.Witness);
}

/// Cache verdicts must be identical to direct solves — the acceptance
/// criterion "zero verdict differences cached-vs-direct" in miniature.
TEST_F(VerdictCacheTest, CachedVerdictsMatchDirectSolves) {
  const char *Patterns[] = {
      "ab*c",       "a&b",           "~(a*)&a{3}",  "(a|b)*&~(.*bb.*)",
      "[a-c]{2,4}", "~(())&(x|y)?",  "(ab)*&(ba)*", "a?b?c?&~(abc)",
  };
  VerdictCache C;
  portfolio::PortfolioSolver Cached(Solver);
  Cached.setVerdictCache(&C);
  portfolio::PortfolioSolver Direct(Solver);
  for (const char *P : Patterns) {
    Re R = parse(P);
    SolveResult D = Direct.checkSat(R);
    SolveResult Cold = Cached.checkSat(R);
    SolveResult Warm = Cached.checkSat(R);
    EXPECT_EQ(Cold.Status, D.Status) << P;
    EXPECT_EQ(Warm.Status, D.Status) << P;
    EXPECT_EQ(Warm.Witness, Cold.Witness) << P;
    if (Cold.Status == SolveStatus::Sat || Cold.Status == SolveStatus::Unsat) {
      EXPECT_EQ(Warm.Stats.Engine, SolveEngine::VerdictCache) << P;
    }
  }
}

} // namespace
