//===- tests/DistProtocolTest.cpp - Wire-protocol framing tests -------------===//
///
/// \file
/// Unit tests for the `src/dist` framed protocol (DESIGN.md §16): codec
/// round trips, the FrameReader's handling of fragmented, truncated, and
/// corrupted streams, and the canonical verdict-line rendering the
/// dist_consistency gates diff.
///
//===----------------------------------------------------------------------===//

#include "dist/Protocol.h"

#include "gtest/gtest.h"

using namespace sbd;
using namespace sbd::dist;

namespace {

WireRequest sampleRequest() {
  WireRequest Req;
  Req.Id = 42;
  Req.Pattern = "(a|b)*&~(c)";
  Req.Opts.TimeoutMs = 250;
  Req.Opts.MaxStates = 4096;
  Req.Opts.Strategy = SearchStrategy::Dfs;
  Req.Opts.PreferSimplerArcs = true;
  Req.Opts.EagerRowRecording = true;
  return Req;
}

WireResponse sampleResponse() {
  WireResponse Resp;
  Resp.Id = 42;
  Resp.Result.ParseOk = true;
  Resp.Result.Result.Status = SolveStatus::Sat;
  Resp.Result.Result.Stop = StopReason::None;
  Resp.Result.Result.Stats.Engine = SolveEngine::DerivBfs;
  Resp.Result.Result.Note = "routed: default_derivative";
  Resp.Result.Result.StatesExplored = 17;
  Resp.Result.Result.TimeUs = 1234;
  Resp.Result.Result.Stats.TotalUs = 1300;
  Resp.Result.Result.Witness = {97, 0x1F600, 98};
  return Resp;
}

//===----------------------------------------------------------------------===//
// Codec round trips
//===----------------------------------------------------------------------===//

TEST(DistProtocolTest, RequestRoundTrip) {
  WireRequest Req = sampleRequest();
  std::vector<uint8_t> Wire;
  encodeRequest(Wire, Req);

  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  ASSERT_TRUE(Reader.next(F));
  EXPECT_EQ(F.Type, FrameType::Request);
  std::optional<WireRequest> Back = decodeRequest(F.Payload);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Id, Req.Id);
  EXPECT_EQ(Back->Pattern, Req.Pattern);
  EXPECT_EQ(Back->Opts.TimeoutMs, Req.Opts.TimeoutMs);
  EXPECT_EQ(Back->Opts.MaxStates, Req.Opts.MaxStates);
  EXPECT_EQ(Back->Opts.Strategy, Req.Opts.Strategy);
  EXPECT_TRUE(Back->Opts.PreferSimplerArcs);
  EXPECT_TRUE(Back->Opts.EagerRowRecording);
  EXPECT_TRUE(Reader.idle());
}

TEST(DistProtocolTest, ResponseRoundTripBitIdentical) {
  WireResponse Resp = sampleResponse();
  std::vector<uint8_t> Wire;
  encodeResponse(Wire, Resp);

  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  ASSERT_TRUE(Reader.next(F));
  EXPECT_EQ(F.Type, FrameType::Response);
  std::optional<WireResponse> Back = decodeResponse(F.Payload);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Id, Resp.Id);
  EXPECT_EQ(Back->Result.ParseOk, Resp.Result.ParseOk);
  EXPECT_EQ(Back->Result.Result.Status, Resp.Result.Result.Status);
  EXPECT_EQ(Back->Result.Result.Stop, Resp.Result.Result.Stop);
  EXPECT_EQ(Back->Result.Result.Stats.Engine, Resp.Result.Result.Stats.Engine);
  EXPECT_EQ(Back->Result.Result.Note, Resp.Result.Result.Note);
  EXPECT_EQ(Back->Result.Result.StatesExplored,
            Resp.Result.Result.StatesExplored);
  EXPECT_EQ(Back->Result.Result.TimeUs, Resp.Result.Result.TimeUs);
  EXPECT_EQ(Back->Result.Result.Witness, Resp.Result.Result.Witness);
  // The rendered verdict line — what the consistency gates diff — must
  // survive the round trip byte-for-byte.
  EXPECT_EQ(renderVerdictLine(7, Back->Result),
            renderVerdictLine(7, Resp.Result));
}

TEST(DistProtocolTest, ParseErrorResponseRoundTrip) {
  WireResponse Resp;
  Resp.Id = 3;
  Resp.Result.ParseOk = false;
  Resp.Result.ParseError = "unbalanced parenthesis";
  Resp.Result.Result.Status = SolveStatus::Unsupported;
  Resp.Result.Result.Stop = StopReason::ParseError;
  std::vector<uint8_t> Wire;
  encodeResponse(Wire, Resp);
  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  ASSERT_TRUE(Reader.next(F));
  std::optional<WireResponse> Back = decodeResponse(F.Payload);
  ASSERT_TRUE(Back.has_value());
  EXPECT_FALSE(Back->Result.ParseOk);
  EXPECT_EQ(Back->Result.ParseError, "unbalanced parenthesis");
  EXPECT_EQ(renderVerdictLine(3, Back->Result), "3 parse_error");
}

TEST(DistProtocolTest, ControlFramesHaveNoPayload) {
  std::vector<uint8_t> Wire;
  encodeReady(Wire);
  encodeShutdown(Wire);
  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  ASSERT_TRUE(Reader.next(F));
  EXPECT_EQ(F.Type, FrameType::Ready);
  EXPECT_TRUE(F.Payload.empty());
  ASSERT_TRUE(Reader.next(F));
  EXPECT_EQ(F.Type, FrameType::Shutdown);
  EXPECT_TRUE(F.Payload.empty());
  EXPECT_TRUE(Reader.idle());
}

//===----------------------------------------------------------------------===//
// Fragmentation, truncation, corruption
//===----------------------------------------------------------------------===//

TEST(DistProtocolTest, InterleavedPartialReads) {
  // Three frames delivered one byte at a time: every frame must surface
  // exactly once, in order, regardless of fragmentation.
  std::vector<uint8_t> Wire;
  encodeReady(Wire);
  encodeRequest(Wire, sampleRequest());
  encodeResponse(Wire, sampleResponse());

  FrameReader Reader;
  std::vector<FrameType> Seen;
  Frame F;
  for (uint8_t B : Wire) {
    Reader.feed(&B, 1);
    while (Reader.next(F))
      Seen.push_back(F.Type);
  }
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], FrameType::Ready);
  EXPECT_EQ(Seen[1], FrameType::Request);
  EXPECT_EQ(Seen[2], FrameType::Response);
  EXPECT_TRUE(Reader.idle());
  EXPECT_FALSE(Reader.error());
}

TEST(DistProtocolTest, TruncatedFrameIsDetectable) {
  std::vector<uint8_t> Wire;
  encodeRequest(Wire, sampleRequest());
  // Drop the last byte: the reader must neither yield the frame nor
  // report a clean boundary — exactly the EOF-mid-frame signal the worker
  // loop treats as a protocol error.
  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size() - 1);
  Frame F;
  EXPECT_FALSE(Reader.next(F));
  EXPECT_FALSE(Reader.error());
  EXPECT_FALSE(Reader.idle());
  EXPECT_EQ(Reader.buffered(), Wire.size() - 1);
  // Feeding the missing byte completes the frame.
  Reader.feed(&Wire[Wire.size() - 1], 1);
  EXPECT_TRUE(Reader.next(F));
  EXPECT_TRUE(Reader.idle());
}

TEST(DistProtocolTest, OversizedFramePoisonsTheStream) {
  // A corrupted length prefix far beyond MaxFramePayload must be refused
  // before any allocation, and the reader must stay poisoned.
  std::vector<uint8_t> Wire = {0xFF, 0xFF, 0xFF, 0xFF,
                               static_cast<uint8_t>(FrameType::Request)};
  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  EXPECT_FALSE(Reader.next(F));
  EXPECT_TRUE(Reader.error());
  EXPECT_NE(Reader.errorMessage().find("oversized"), std::string::npos);
  // Even valid bytes afterwards never yield another frame.
  std::vector<uint8_t> Valid;
  encodeReady(Valid);
  Reader.feed(Valid.data(), Valid.size());
  EXPECT_FALSE(Reader.next(F));
}

TEST(DistProtocolTest, UnknownFrameTypePoisonsTheStream) {
  std::vector<uint8_t> Wire = {0, 0, 0, 0, 99};
  FrameReader Reader;
  Reader.feed(Wire.data(), Wire.size());
  Frame F;
  EXPECT_FALSE(Reader.next(F));
  EXPECT_TRUE(Reader.error());
  EXPECT_NE(Reader.errorMessage().find("unknown frame type"),
            std::string::npos);
}

TEST(DistProtocolTest, MalformedPayloadsDecodeToNullopt) {
  // Truncated request payload.
  std::vector<uint8_t> Wire;
  encodeRequest(Wire, sampleRequest());
  std::vector<uint8_t> Payload(Wire.begin() + 5, Wire.end());
  ASSERT_TRUE(decodeRequest(Payload).has_value());
  std::vector<uint8_t> Short(Payload.begin(), Payload.end() - 1);
  EXPECT_FALSE(decodeRequest(Short).has_value());
  // Trailing garbage.
  std::vector<uint8_t> Long = Payload;
  Long.push_back(0);
  EXPECT_FALSE(decodeRequest(Long).has_value());
  // Out-of-range enum.
  std::vector<uint8_t> BadStrat = Payload;
  BadStrat[BadStrat.size() - 2] = 0xEE; // Strategy byte
  EXPECT_FALSE(decodeRequest(BadStrat).has_value());

  // Response with a witness count pointing past the payload.
  std::vector<uint8_t> RWire;
  encodeResponse(RWire, sampleResponse());
  std::vector<uint8_t> RPayload(RWire.begin() + 5, RWire.end());
  ASSERT_TRUE(decodeResponse(RPayload).has_value());
  std::vector<uint8_t> BadCount = RPayload;
  BadCount[BadCount.size() - 3 * 4 - 4] = 0xFF; // witness count low byte
  EXPECT_FALSE(decodeResponse(BadCount).has_value());
}

//===----------------------------------------------------------------------===//
// Verdict-line rendering
//===----------------------------------------------------------------------===//

TEST(DistProtocolTest, VerdictLineFormat) {
  BatchResult R;
  R.ParseOk = true;
  R.Result.Status = SolveStatus::Unsat;
  EXPECT_EQ(renderVerdictLine(0, R), "0 unsat");

  R.Result.Status = SolveStatus::Sat;
  R.Result.Witness = {97, 98};
  EXPECT_EQ(renderVerdictLine(1, R), "1 sat 97,98");

  R.Result.Witness.clear(); // the empty-string witness
  EXPECT_EQ(renderVerdictLine(2, R), "2 sat .");

  R.Result.Status = SolveStatus::Unknown;
  EXPECT_EQ(renderVerdictLine(3, R), "3 unknown");

  // Run-dependent details (timings, engine) must not leak into the line.
  BatchResult A = R, B = R;
  A.Result.TimeUs = 1;
  B.Result.TimeUs = 99999;
  A.Result.Stats.Engine = SolveEngine::DerivBfs;
  B.Result.Stats.Engine = SolveEngine::Antimirov;
  EXPECT_EQ(renderVerdictLine(4, A), renderVerdictLine(4, B));
}

} // namespace
