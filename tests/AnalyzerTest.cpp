//===- tests/AnalyzerTest.cpp - Pre-solve static analysis tests -------------===//
///
/// \file
/// Covers the RegexAnalyzer (DESIGN.md §14): golden feature vectors on
/// fixed patterns, memoization identity over the hash-consed DAG, counter
/// blow-up bounds on nested loops, literal-prefix soundness against solver
/// witnesses on fuzz samples, classification stability across arena
/// rebuilds, and the portfolio routing decisions derived from the
/// features.
///
//===----------------------------------------------------------------------===//

#include "analysis/RegexAnalyzer.h"
#include "fuzz/Generator.h"
#include "portfolio/Portfolio.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"

#include "gtest/gtest.h"

namespace {

using namespace sbd;
using analysis::ReClass;
using fuzz::GeneratorOptions;
using fuzz::RegexGenerator;
using analysis::RegexAnalyzer;
using analysis::RegexFeatures;

/// Full solver stack plus analyzer for one test.
struct Stack {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};
  RegexAnalyzer A{M};

  Re parse(const std::string &Pattern) {
    RegexParseResult R = parseRegex(M, Pattern);
    EXPECT_TRUE(R.Ok) << Pattern << ": " << R.Error;
    return R.Value;
  }
};

TEST(AnalyzerTest, GoldenFeaturesLiteral) {
  Stack St;
  const RegexFeatures &F = St.A.analyze(St.parse("abc"));
  EXPECT_EQ(F.Class, ReClass::Literal);
  EXPECT_EQ(F.Risk, 0u);
  EXPECT_EQ(F.NumPred, 3u);
  EXPECT_EQ(F.NumConcat, 2u);
  EXPECT_EQ(F.TreeSize, 5u);
  EXPECT_EQ(F.DagSize, 5u);
  EXPECT_EQ(F.StarHeight, 0u);
  EXPECT_FALSE(F.Nullable);
  EXPECT_FALSE(F.EmptyLang);
  ASSERT_EQ(F.PrefixLen, 3u);
  EXPECT_TRUE(F.PrefixExact);
  EXPECT_TRUE(F.PrefixComplete);
  EXPECT_EQ(F.Prefix[0], static_cast<uint32_t>('a'));
  EXPECT_EQ(F.Prefix[1], static_cast<uint32_t>('b'));
  EXPECT_EQ(F.Prefix[2], static_cast<uint32_t>('c'));
}

TEST(AnalyzerTest, GoldenFeaturesKleene) {
  Stack St;
  const RegexFeatures &F = St.A.analyze(St.parse("(ab)*"));
  EXPECT_EQ(F.Class, ReClass::KleeneOnly);
  EXPECT_EQ(F.Risk, 0u);
  EXPECT_EQ(F.StarHeight, 1u);
  EXPECT_EQ(F.NumStar, 1u);
  EXPECT_TRUE(F.Nullable);
  EXPECT_EQ(F.PrefixLen, 0u); // nullable ⇒ no required prefix
  EXPECT_FALSE(F.PrefixExact);
}

TEST(AnalyzerTest, GoldenFeaturesBoolean) {
  Stack St;
  const RegexFeatures &F = St.A.analyze(St.parse("(ab)+&(ba)+"));
  EXPECT_EQ(F.Class, ReClass::BooleanHeavy);
  EXPECT_EQ(F.NumInter, 1u);
  EXPECT_EQ(F.BooleanDepth, 1u);
  EXPECT_EQ(F.ComplDepth, 0u);
  EXPECT_FALSE(F.Nullable);
}

TEST(AnalyzerTest, GoldenFeaturesCounterHeavy) {
  Stack St;
  const RegexFeatures &F = St.A.analyze(St.parse("(a{10,20}){10,20}"));
  EXPECT_EQ(F.Class, ReClass::CounterHeavy);
  EXPECT_EQ(F.CounterBlowup, 400u); // 20 * 20 along the nesting path
  EXPECT_EQ(F.MaxLoopBound, 20u);
  EXPECT_EQ(F.Risk, 40u); // 10 * floor(log2(400))
}

TEST(AnalyzerTest, GoldenFeaturesAdversarial) {
  Stack St;
  const RegexFeatures &F = St.A.analyze(St.parse("~(((ab)*c)*d)*"));
  EXPECT_EQ(F.Class, ReClass::Adversarial);
  EXPECT_EQ(F.StarHeight, 3u);
  EXPECT_EQ(F.ComplDepth, 1u);
  EXPECT_EQ(F.Risk, 65u); // 25*(3-1) star nesting + 15 complement-under-star
  EXPECT_GE(F.Risk, analysis::RiskAdversarial);
}

TEST(AnalyzerTest, MemoizationIsIdentityOnTheDag) {
  Stack St;
  Re R = St.parse("(ab)*c|(ab)*d");
  St.A.analyze(R);
  size_t FirstPass = St.A.nodesAnalyzed();
  EXPECT_GT(FirstPass, 0u);
  // Re-analyzing the same root folds nothing new.
  St.A.analyze(R);
  EXPECT_EQ(St.A.nodesAnalyzed(), FirstPass);
  // A superterm sharing (ab)* only folds its genuinely new nodes: the
  // fold count rises by less than the subterm's own footprint would cost.
  Re Super = St.parse("((ab)*c|(ab)*d)e");
  const RegexFeatures &F = St.A.analyze(Super);
  size_t SecondPass = St.A.nodesAnalyzed() - FirstPass;
  EXPECT_GT(SecondPass, 0u);
  EXPECT_LT(SecondPass, static_cast<size_t>(F.DagSize));
  // cached() returns the same record analyze() produced.
  EXPECT_EQ(St.A.cached(Super).TreeSize, F.TreeSize);
  EXPECT_EQ(St.A.cached(Super).Class, F.Class);
}

TEST(AnalyzerTest, CounterBlowupBoundsOnNestedLoops) {
  Stack St;
  // Sequential loops do not multiply — the bound tracks a single path.
  EXPECT_EQ(St.A.analyze(St.parse("a{2}b{3}")).CounterBlowup, 3u);
  // Nested loops multiply their upper bounds.
  EXPECT_EQ(St.A.analyze(St.parse("(a{2,3}){4,5}")).CounterBlowup, 15u);
  // Unbounded loops contribute their lower bound (the forced unrolling).
  EXPECT_EQ(St.A.analyze(St.parse("(a{7,}){3}")).CounterBlowup, 21u);
  // Deep nesting saturates instead of wrapping around.
  const RegexFeatures &Sat =
      St.A.analyze(St.parse("(((a{65535}){65535}){65535}){65535}"));
  EXPECT_EQ(Sat.CounterBlowup, analysis::BlowupSat);
  EXPECT_EQ(Sat.Class, ReClass::CounterHeavy);
}

TEST(AnalyzerTest, LiteralPrefixIsSoundOnFuzzSamples) {
  Stack St;
  GeneratorOptions GenOpts;
  GenOpts.MaxNodes = 18;
  RegexGenerator Gen(St.M, 91, GenOpts);
  SolveOptions Opts;
  Opts.MaxStates = 4000;
  Opts.TimeoutMs = 50;
  size_t SatSeen = 0;
  for (int I = 0; I != 150; ++I) {
    Re R = Gen.generate();
    const RegexFeatures F = St.A.analyze(R); // copy: solver also analyzes
    SolveResult Res = St.S.checkSat(R, Opts);
    if (!Res.isSat())
      continue;
    ++SatSeen;
    const std::vector<uint32_t> &W = Res.Witness;
    ASSERT_GE(W.size(), F.PrefixLen)
        << St.M.toString(R) << ": witness shorter than required prefix";
    for (uint32_t J = 0; J != F.PrefixLen; ++J)
      EXPECT_EQ(W[J], F.Prefix[J])
          << St.M.toString(R) << ": witness diverges from prefix at " << J;
    if (F.PrefixExact && F.PrefixComplete)
      EXPECT_EQ(W.size(), F.PrefixLen)
          << St.M.toString(R) << ": exact-word language, longer witness";
  }
  EXPECT_GT(SatSeen, 20u) << "fuzz samples degenerated; seed drifted?";
}

TEST(AnalyzerTest, ClassificationStableAcrossArenaRebuilds) {
  Stack St;
  GeneratorOptions GenOpts;
  GenOpts.MaxNodes = 24;
  RegexGenerator Gen(St.M, 17, GenOpts);
  for (int I = 0; I != 100; ++I) {
    Re R = Gen.generate();
    const RegexFeatures F = St.A.analyze(R);
    // Round-trip through the printer into a fresh arena: interning order,
    // node ids, and memo state all change; the features must not.
    RegexManager M2;
    RegexParseResult Reparsed = parseRegex(M2, St.M.toString(R));
    ASSERT_TRUE(Reparsed.Ok) << St.M.toString(R) << ": " << Reparsed.Error;
    RegexAnalyzer A2(M2);
    const RegexFeatures &G = A2.analyze(Reparsed.Value);
    EXPECT_EQ(F.Class, G.Class) << St.M.toString(R);
    EXPECT_EQ(F.Risk, G.Risk) << St.M.toString(R);
    EXPECT_EQ(F.TreeSize, G.TreeSize) << St.M.toString(R);
    EXPECT_EQ(F.DagSize, G.DagSize) << St.M.toString(R);
    EXPECT_EQ(F.StarHeight, G.StarHeight) << St.M.toString(R);
    EXPECT_EQ(F.CounterBlowup, G.CounterBlowup) << St.M.toString(R);
    EXPECT_EQ(F.Nullable, G.Nullable) << St.M.toString(R);
    EXPECT_EQ(F.PrefixLen, G.PrefixLen) << St.M.toString(R);
    for (uint32_t J = 0; J != F.PrefixLen; ++J)
      EXPECT_EQ(F.Prefix[J], G.Prefix[J]) << St.M.toString(R);
  }
}

TEST(AnalyzerTest, RoutingFollowsTheFeatureTable) {
  Stack St;
  SolveOptions Bfs;
  // Small positive iteration goes to the partial-derivative baseline.
  portfolio::RouteDecision D =
      portfolio::planRoute(St.A.analyze(St.parse("(ab)*")), Bfs);
  EXPECT_EQ(D.Engine, SolveEngine::Antimirov);
  EXPECT_STREQ(D.Reason, "small_positive_iteration");
  // Boolean structure stays on the derivative engine.
  D = portfolio::planRoute(St.A.analyze(St.parse("(ab)+&(ba)+")), Bfs);
  EXPECT_EQ(D.Engine, SolveEngine::DerivBfs);
  // Adversarial terms stay on the derivative engine under the cap.
  D = portfolio::planRoute(St.A.analyze(St.parse("~(((ab)*c)*d)*")), Bfs);
  EXPECT_EQ(D.Engine, SolveEngine::DerivBfs);
  EXPECT_STREQ(D.Reason, "adversarial_capped");
  // An explicit DFS request pins the derivative DFS engine regardless.
  SolveOptions Dfs;
  Dfs.Strategy = SearchStrategy::Dfs;
  D = portfolio::planRoute(St.A.analyze(St.parse("(ab)*")), Dfs);
  EXPECT_EQ(D.Engine, SolveEngine::DerivDfs);
  EXPECT_STREQ(D.Reason, "dfs_strategy_pinned");
}

TEST(AnalyzerTest, PortfolioAgreesWithDirectSolver) {
  Stack St;
  portfolio::PortfolioSolver Port(St.S);
  const char *Patterns[] = {"(ab)*",       "abc",      "(ab)+&(ba)+",
                            "a{3}b*",      "~(a*)&a*", "(a|b)*c",
                            "[a-z]+@[a-z]+"};
  for (const char *P : Patterns) {
    Re R = St.parse(P);
    SolveResult Direct = St.S.checkSat(R);
    SolveResult Routed = Port.checkSat(R);
    EXPECT_EQ(Direct.Status, Routed.Status) << P;
    if (Routed.isSat())
      EXPECT_TRUE(St.S.matchesWord(R, Routed.Witness)) << P;
  }
}

TEST(AnalyzerTest, SolverStatsCarryThePrediction) {
  Stack St;
  SolveResult Res = St.S.checkSat(St.parse("~(((ab)*c)*d)*"));
  EXPECT_STREQ(Res.Stats.PredictedClass, "adversarial");
  EXPECT_GE(Res.Stats.RiskScore, analysis::RiskAdversarial);
  EXPECT_GT(Res.Stats.PredictedStates, 0u);
#if SBD_OBS
  EXPECT_GT(Res.Stats.AnalysisNodesVisited, 0u);
#endif
}

} // namespace
