//===- tests/LanguageLawsTest.cpp - Solver-verified language identities ------===//
///
/// \file
/// End-to-end integration suite: classical language-algebra identities are
/// checked *by the decision procedure itself* (equivalence reduces to
/// emptiness of the symmetric difference, Section 5). Any unsoundness in
/// derivatives, normal forms, the graph, or the constructors shows up here
/// as a failed law.
///
//===----------------------------------------------------------------------===//

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class LawsTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  testing::AssertionResult equivalent(Re A, Re B) {
    SolveOptions Opts;
    Opts.MaxStates = 200000;
    SolveResult R = S.checkEquivalent(A, B, Opts);
    if (R.isUnsat())
      return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << M.toString(A) << " vs " << M.toString(B) << ": "
           << statusName(R.Status);
  }

  testing::AssertionResult contains(Re A, Re B) {
    SolveOptions Opts;
    Opts.MaxStates = 200000;
    SolveResult R = S.checkContains(A, B, Opts);
    if (R.isUnsat())
      return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << M.toString(A) << " not within " << M.toString(B);
  }
};

TEST_F(LawsTest, KleeneAlgebraIdentities) {
  Re A = re("a(b|c)"), B = re("x*y"), C = re("(pq)+");
  // Distributivity of · over |.
  EXPECT_TRUE(equivalent(M.concat(A, M.union_(B, C)),
                         M.union_(M.concat(A, B), M.concat(A, C))));
  EXPECT_TRUE(equivalent(M.concat(M.union_(A, B), C),
                         M.union_(M.concat(A, C), M.concat(B, C))));
  // Star unrolling: R* = ε | R·R*.
  EXPECT_TRUE(equivalent(M.star(A),
                         M.union_(M.epsilon(), M.concat(A, M.star(A)))));
  // (R*)* = R*, (R|S)* = (R*S*)*.
  EXPECT_TRUE(equivalent(M.star(M.star(A)), M.star(A)));
  EXPECT_TRUE(equivalent(M.star(M.union_(A, B)),
                         M.star(M.concat(M.star(A), M.star(B)))));
}

TEST_F(LawsTest, BooleanAlgebraIdentities) {
  Re A = re("a+b"), B = re("(a|b){2,4}"), C = re(".*ab.*");
  // De Morgan at the language level.
  EXPECT_TRUE(equivalent(M.complement(M.union_(A, B)),
                         M.inter(M.complement(A), M.complement(B))));
  EXPECT_TRUE(equivalent(M.complement(M.inter(A, B)),
                         M.union_(M.complement(A), M.complement(B))));
  // Distributivity of & over |.
  EXPECT_TRUE(equivalent(M.inter(A, M.union_(B, C)),
                         M.union_(M.inter(A, B), M.inter(A, C))));
  // Double complement and difference laws.
  EXPECT_TRUE(equivalent(M.complement(M.complement(C)), C));
  EXPECT_TRUE(equivalent(M.diff(A, B), M.diff(A, M.inter(A, B))));
}

TEST_F(LawsTest, LoopIdentities) {
  Re A = re("ab?");
  // Splitting: a{m+n} = a{m}·a{n}; range splitting.
  EXPECT_TRUE(equivalent(M.loop(A, 5, 5),
                         M.concat(M.loop(A, 2, 2), M.loop(A, 3, 3))));
  EXPECT_TRUE(equivalent(M.loop(A, 2, 5),
                         M.concat(M.loop(A, 2, 2), M.loop(A, 0, 3))));
  // R{0,n} = ε | R·R{0,n-1}.
  EXPECT_TRUE(equivalent(
      M.loop(A, 0, 4),
      M.union_(M.epsilon(), M.concat(A, M.loop(A, 0, 3)))));
  // R+ = R·R*.
  EXPECT_TRUE(equivalent(M.plus(A), M.concat(A, M.star(A))));
}

TEST_F(LawsTest, ContainmentLattice) {
  Re A = re("(ab)+"), B = re("(ab)*"), C = re("(a|b)*");
  EXPECT_TRUE(contains(A, B));
  EXPECT_TRUE(contains(B, C));
  EXPECT_TRUE(contains(M.inter(A, C), A));
  EXPECT_TRUE(contains(A, M.union_(A, B)));
  // Strictness: B ⊄ A (ε distinguishes them).
  SolveResult R = S.checkContains(B, A);
  ASSERT_TRUE(R.isSat());
  EXPECT_TRUE(R.Witness.empty()); // the shortest counterexample is ε
}

TEST_F(LawsTest, QuotientLaw) {
  // L(δ-step) semantics at the language level: for any R and character a,
  // a·(a⁻¹L ∩ Σ*) ⊆ L when restricted to words starting with a.
  const char *Patterns[] = {"(ab|ba)*", "~(.*aa.*)", ".*\\d.*&~(.*01.*)"};
  for (const char *P : Patterns) {
    Re R = re(P);
    for (uint32_t Ch : {uint32_t('a'), uint32_t('0')}) {
      Re D = E.brzozowski(R, Ch);
      // a·D_a(R) ⊆ R.
      EXPECT_TRUE(contains(M.concat(M.chr(Ch), D), R)) << P;
      // And conversely R ∩ a·Σ* ⊆ a·D_a(R).
      Re StartsWith = M.concat(M.chr(Ch), M.top());
      EXPECT_TRUE(
          contains(M.inter(R, StartsWith), M.concat(M.chr(Ch), D)))
          << P;
    }
  }
}

/// Randomized law checking over generated terms.
class RandomLawsTest : public ::testing::TestWithParam<uint64_t> {};

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(2)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  default:
    return randomRegex(M, R, 0);
  }
}

TEST_P(RandomLawsTest, LatticeAndDeMorganOnRandomTerms) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  Rng Rand(GetParam());
  SolveOptions Opts;
  Opts.MaxStates = 50000;

  for (int I = 0; I != 4; ++I) {
    Re A = randomRegex(M, Rand, 3);
    Re B = randomRegex(M, Rand, 3);
    // A & B ⊆ A ⊆ A | B.
    EXPECT_TRUE(S.checkContains(M.inter(A, B), A, Opts).isUnsat());
    EXPECT_TRUE(S.checkContains(A, M.union_(A, B), Opts).isUnsat());
    // De Morgan.
    EXPECT_TRUE(S.checkEquivalent(M.complement(M.union_(A, B)),
                                  M.inter(M.complement(A), M.complement(B)),
                                  Opts)
                    .isUnsat());
    // Symmetric difference with self is empty.
    EXPECT_TRUE(S.checkEquivalent(A, A, Opts).isUnsat());
    // A ∪ ~A is everything.
    EXPECT_TRUE(
        S.checkEquivalent(M.union_(A, M.complement(A)), M.top(), Opts)
            .isUnsat());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLawsTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
