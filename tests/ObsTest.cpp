//===- tests/ObsTest.cpp - Observability layer tests ------------------------===//
///
/// \file
/// The guarantees of the sbd::obs subsystem (support/Metrics.h,
/// support/Trace.h):
///   - the counter registry merges per-thread shards correctly, including
///     shards of threads that have already exited;
///   - tracing on vs off never changes a verdict or witness;
///   - the exported documents (Chrome trace, stats JSON) are valid JSON
///     with the advertised structure — validated with the in-tree parser.
///
//===----------------------------------------------------------------------===//

#include "support/Exposition.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "policy/Json.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "solver/SlowQueryLog.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace sbd;

namespace {

/// Solves one pattern on a fresh solver stack.
SolveResult solvePattern(const std::string &Pattern) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  return S.checkSat(parseRegexOrDie(M, Pattern));
}

TEST(MetricsTest, CounterNamesAreUniqueAndStable) {
  std::set<std::string> Names;
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    std::string Name = obs::counterName(static_cast<obs::Counter>(I));
    EXPECT_NE(Name, "?");
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
  }
}

TEST(MetricsTest, ShardArithmetic) {
  obs::MetricShard A, B;
  A.add(obs::Counter::DerivativeCalls, 5);
  A.add(obs::Counter::MemoHits, 2);
  B.add(obs::Counter::DerivativeCalls, 3);
  B += A;
  EXPECT_EQ(B.get(obs::Counter::DerivativeCalls), 8u);
  EXPECT_EQ(B.get(obs::Counter::MemoHits), 2u);
  obs::MetricShard D = B.since(A);
  EXPECT_EQ(D.get(obs::Counter::DerivativeCalls), 3u);
  EXPECT_EQ(D.get(obs::Counter::MemoHits), 0u);
  B.reset();
  EXPECT_EQ(B.get(obs::Counter::DerivativeCalls), 0u);
}

TEST(MetricsTest, ShardJsonParses) {
  obs::MetricShard S;
  S.add(obs::Counter::DnfCalls, 7);
  JsonParseResult R = parseJson(S.json());
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue *V = R.Value.get("dnf_calls");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asNumber(), 7.0);
  // Every counter must appear under its registered name.
  for (size_t I = 0; I != obs::NumCounters; ++I)
    EXPECT_NE(R.Value.get(obs::counterName(static_cast<obs::Counter>(I))),
              nullptr);
}

TEST(MetricsTest, SolveStatsJsonParses) {
  SolveStats St;
  St.DerivativeCalls = 11;
  St.DeriveUs = 42;
  JsonParseResult R = parseJson(St.json());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.get("derivative_calls")->asNumber(), 11.0);
  EXPECT_EQ(R.Value.get("derive_us")->asNumber(), 42.0);
  for (const char *Key :
       {"engine", "dnf_calls", "memo_hits", "arena_nodes", "peak_frontier",
        "parse_us", "minterm_us", "dnf_us", "cache_probe_us", "scan_us",
        "search_us", "total_us"})
    EXPECT_NE(R.Value.get(Key), nullptr) << Key;
  EXPECT_EQ(R.Value.get("engine")->asString(), "deriv_bfs");
}

#if SBD_OBS

TEST(MetricsTest, RegistrySeesSolverWork) {
  obs::MetricsRegistry::global().reset();
  SolveResult R = solvePattern("(ab)+&(ba)+");
  EXPECT_TRUE(R.isUnsat());
  obs::MetricShard Snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(Snap.get(obs::Counter::DerivativeCalls), 0u);
  EXPECT_GT(Snap.get(obs::Counter::DnfCalls), 0u);
  EXPECT_EQ(Snap.get(obs::Counter::QueriesSolved), 1u);
  // The per-query stats and the registry must agree on this single query.
  EXPECT_EQ(Snap.get(obs::Counter::DerivativeCalls), R.Stats.DerivativeCalls);
  EXPECT_EQ(Snap.get(obs::Counter::SolverSteps), R.Stats.SolverSteps);
  obs::MetricsRegistry::global().reset();
  EXPECT_EQ(obs::MetricsRegistry::global()
                .snapshot()
                .get(obs::Counter::DerivativeCalls),
            0u);
}

TEST(MetricsTest, ExitedThreadShardsFoldIntoSnapshot) {
  obs::MetricsRegistry::global().reset();
  std::thread Worker([] { obs::tlsShard().add(obs::Counter::Lookups, 123); });
  Worker.join();
  EXPECT_EQ(
      obs::MetricsRegistry::global().snapshot().get(obs::Counter::Lookups),
      123u);
}

#endif // SBD_OBS

TEST(TracerTest, OnOffVerdictParity) {
  const std::vector<std::string> Patterns = {
      "(.*\\d.*)&(.*[a-z].*)&.{4,12}",
      "(ab)+&(ba)+",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "~(.*ab.*)&.*a.*&.*b.*",
  };
  std::vector<SolveResult> Off, On;
  obs::Tracer::global().stop();
  for (const std::string &P : Patterns)
    Off.push_back(solvePattern(P));
  obs::Tracer::global().start();
  for (const std::string &P : Patterns)
    On.push_back(solvePattern(P));
  obs::Tracer::global().stop();
  for (size_t I = 0; I != Patterns.size(); ++I) {
    EXPECT_EQ(Off[I].Status, On[I].Status) << Patterns[I];
    EXPECT_EQ(Off[I].Witness, On[I].Witness) << Patterns[I];
    EXPECT_EQ(Off[I].StatesExplored, On[I].StatesExplored) << Patterns[I];
  }
#if SBD_OBS
  EXPECT_GT(obs::Tracer::global().eventCount(), 0u);
#endif
  obs::Tracer::global().clear();
}

#if SBD_OBS

TEST(TracerTest, ChromeTraceJsonIsValid) {
  obs::Tracer::global().start();
  {
    obs::ScopedSpan Outer("outer", "test");
    Outer.arg("pattern", std::string("a\"b\\c")); // needs escaping
    Outer.arg("count", uint64_t(3));
    obs::ScopedSpan Inner("inner", "test");
  }
  (void)solvePattern("a{3}b*");
  obs::Tracer::global().stop();
  std::string Doc = obs::Tracer::global().chromeTraceJson();
  obs::Tracer::global().clear();

  JsonParseResult R = parseJson(Doc);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << Doc;
  const JsonValue *Events = R.Value.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_GE(Events->asArray().size(), 3u); // outer, inner, checkSat
  bool SawOuter = false;
  for (const JsonValue &E : Events->asArray()) {
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_NE(E.get("ph"), nullptr);
    EXPECT_EQ(E.get("ph")->asString(), "X");
    ASSERT_NE(E.get("ts"), nullptr);
    ASSERT_NE(E.get("dur"), nullptr);
    ASSERT_NE(E.get("tid"), nullptr);
    if (E.get("name")->asString() == "outer") {
      SawOuter = true;
      const JsonValue *Args = E.get("args");
      ASSERT_NE(Args, nullptr);
      EXPECT_EQ(Args->get("pattern")->asString(), "a\"b\\c");
      EXPECT_EQ(Args->get("count")->asNumber(), 3.0);
    }
  }
  EXPECT_TRUE(SawOuter);
}

TEST(TracerTest, SpansDeadWhenTracerOff) {
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  {
    obs::ScopedSpan Span("dead", "test");
    Span.arg("ignored", uint64_t(1));
  }
  EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

TEST(TracerTest, PerThreadBufferBoundsMemoryAndCountsDrops) {
  obs::Tracer &T = obs::Tracer::global();
  const size_t OldCap = T.maxEventsPerThread();
  obs::MetricsRegistry::global().reset();
  T.setMaxEventsPerThread(16);
  T.start();
  for (int I = 0; I != 100; ++I)
    obs::ScopedSpan Span("flood", "test");
  T.stop();
  EXPECT_LE(T.eventCount(), 16u);
  // Drop-newest: the earliest window of the run is the one that is kept.
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().get(
                obs::Counter::TraceEventsDropped),
            100u - 16u);
  T.clear();
  T.setMaxEventsPerThread(OldCap);
  obs::MetricsRegistry::global().reset();
}

#endif // SBD_OBS

TEST(HistogramTest, BucketRuleIsPureIntegerArithmetic) {
  // Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(obs::histBucket(0), 0u);
  EXPECT_EQ(obs::histBucket(1), 1u);
  EXPECT_EQ(obs::histBucket(2), 2u);
  EXPECT_EQ(obs::histBucket(3), 2u);
  EXPECT_EQ(obs::histBucket(4), 3u);
  EXPECT_EQ(obs::histBucket(1023), 10u);
  EXPECT_EQ(obs::histBucket(1024), 11u);
  EXPECT_EQ(obs::histBucket(UINT64_MAX), obs::NumHistBuckets - 1);
  EXPECT_EQ(obs::histBucketUpperBound(0), 0u);
  EXPECT_EQ(obs::histBucketUpperBound(1), 1u);
  EXPECT_EQ(obs::histBucketUpperBound(2), 3u);
  EXPECT_EQ(obs::histBucketUpperBound(11), 2047u);
  EXPECT_EQ(obs::histBucketUpperBound(63), UINT64_MAX);
}

TEST(HistogramTest, RecordingAndPercentilesAreDeterministic) {
  obs::HistShard::Data D;
  for (uint64_t V : {0, 1, 2, 3, 5, 9, 100, 100, 1000, 60000})
    D.record(V);
  EXPECT_EQ(D.Count, 10u);
  EXPECT_EQ(D.Sum, 61220u);
  EXPECT_EQ(D.Min, 0u);
  EXPECT_EQ(D.Max, 60000u);
  EXPECT_EQ(D.Buckets[0], 1u); // 0
  EXPECT_EQ(D.Buckets[1], 1u); // 1
  EXPECT_EQ(D.Buckets[2], 2u); // 2, 3
  EXPECT_EQ(D.Buckets[3], 1u); // 5
  EXPECT_EQ(D.Buckets[4], 1u); // 9
  EXPECT_EQ(D.Buckets[7], 2u); // 100 x2
  EXPECT_EQ(D.Buckets[10], 1u); // 1000
  EXPECT_EQ(D.Buckets[16], 1u); // 60000
  // Percentile = upper bound of the bucket holding the ceil(q*N)-th sample,
  // tightened to the observed Max: p50 -> 5th sample (value 5, bucket 3,
  // ub 7); p90 -> 9th sample (1000, bucket 10, ub 1023); p99 -> 10th
  // sample's bucket ub 65535 tightens to Max 60000.
  EXPECT_EQ(obs::histPercentile(D, 50), 7u);
  EXPECT_EQ(obs::histPercentile(D, 90), 1023u);
  EXPECT_EQ(obs::histPercentile(D, 99), 60000u);
  EXPECT_EQ(obs::histPercentile(obs::HistShard::Data(), 50), 0u);
}

TEST(HistogramTest, ShardJsonParses) {
  obs::HistShard S;
  S.record(obs::Hist::SolveLatencyUs, 7);
  S.record(obs::Hist::SolveLatencyUs, 130);
  JsonParseResult R = parseJson(S.json());
  ASSERT_TRUE(R.Ok) << R.Error;
  for (size_t I = 0; I != obs::NumHistograms; ++I)
    ASSERT_NE(R.Value.get(obs::histName(static_cast<obs::Hist>(I))), nullptr);
  const JsonValue *Lat = R.Value.get("solve_latency_us");
  EXPECT_EQ(Lat->get("count")->asNumber(), 2.0);
  EXPECT_EQ(Lat->get("sum")->asNumber(), 137.0);
  EXPECT_EQ(Lat->get("min")->asNumber(), 7.0);
  EXPECT_EQ(Lat->get("max")->asNumber(), 130.0);
  for (const char *Key : {"p50", "p90", "p99", "buckets"})
    EXPECT_NE(Lat->get(Key), nullptr) << Key;
  ASSERT_TRUE(Lat->get("buckets")->isArray());
  EXPECT_EQ(Lat->get("buckets")->asArray().size(), 2u); // sparse: two buckets
}

#if SBD_OBS

TEST(HistogramTest, MergeIsIndependentOfThreadCount) {
  // The same fixed workload recorded on one thread and sliced over eight
  // must merge to bit-identical distributions.
  std::vector<uint64_t> Work;
  for (uint64_t I = 0; I != 4096; ++I)
    Work.push_back((I * 2654435761u) % 100000);

  obs::HistShard Single;
  for (uint64_t V : Work)
    Single.record(obs::Hist::SolveLatencyUs, V);

  obs::HistogramRegistry::global().reset();
  std::vector<std::thread> Workers;
  for (size_t W = 0; W != 8; ++W)
    Workers.emplace_back([W, &Work] {
      for (size_t I = W; I < Work.size(); I += 8)
        obs::tlsHistShard().record(obs::Hist::SolveLatencyUs, Work[I]);
    });
  for (std::thread &Th : Workers)
    Th.join();
  obs::HistShard Merged = obs::HistogramRegistry::global().snapshot();

  const obs::HistShard::Data &A = Single.data(obs::Hist::SolveLatencyUs);
  const obs::HistShard::Data &B = Merged.data(obs::Hist::SolveLatencyUs);
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_EQ(A.Sum, B.Sum);
  EXPECT_EQ(A.Min, B.Min);
  EXPECT_EQ(A.Max, B.Max);
  for (size_t I = 0; I != obs::NumHistBuckets; ++I)
    EXPECT_EQ(A.Buckets[I], B.Buckets[I]) << "bucket " << I;
  EXPECT_EQ(Single.json(), Merged.json());
  obs::HistogramRegistry::global().reset();
}

TEST(HistogramTest, SolverRecordsLatencyAndSizeDistributions) {
  obs::HistogramRegistry::global().reset();
  (void)solvePattern("(.*\\d.*)&(.*[a-z].*)&.{4,12}");
  obs::HistShard Snap = obs::HistogramRegistry::global().snapshot();
  EXPECT_EQ(Snap.count(obs::Hist::SolveLatencyUs), 1u);
  EXPECT_EQ(Snap.count(obs::Hist::SolveArenaNodes), 1u);
  EXPECT_GT(Snap.count(obs::Hist::DnfExpansionArcs), 0u);
  EXPECT_GT(Snap.data(obs::Hist::SolveArenaNodes).Max, 0u);
  obs::HistogramRegistry::global().reset();
}

#else // !SBD_OBS

TEST(HistogramTest, RecordingCompiledOutUnderObsOff) {
  obs::HistogramRegistry::global().reset();
  SBD_OBS_HIST(SolveLatencyUs, 42); // must be a no-op
  (void)solvePattern("(ab)+&(ba)+");
  obs::HistShard Snap = obs::HistogramRegistry::global().snapshot();
  for (size_t I = 0; I != obs::NumHistograms; ++I)
    EXPECT_EQ(Snap.count(static_cast<obs::Hist>(I)), 0u);
}

#endif // SBD_OBS

#if SBD_OBS

TEST(SlowQueryLogTest, CapturesReplayableArtifactPastThreshold) {
  obs::SlowQueryLog &Log = obs::SlowQueryLog::global();
  (void)Log.drain();
  obs::SlowQueryOptions Opts;
  Opts.LatencyThresholdUs = 0; // capture everything
  Log.configure(Opts);
  EXPECT_TRUE(Log.armed());

  SolveResult R = solvePattern("(.*\\d.*)&(.*[a-z].*)&.{4,12}");
  EXPECT_TRUE(R.isSat());

  std::vector<obs::SlowQueryArtifact> Got = Log.drain();
  Log.configure(obs::SlowQueryOptions()); // disarm for later tests
  EXPECT_FALSE(Log.armed());
  ASSERT_EQ(Got.size(), 1u);
  const obs::SlowQueryArtifact &A = Got[0];
  EXPECT_NE(A.Pattern.find("re.inter"), std::string::npos);
  EXPECT_NE(A.Script.find("(check-sat)"), std::string::npos);
  EXPECT_EQ(A.Status, "sat");
  EXPECT_EQ(A.Strategy, "bfs");
  EXPECT_FALSE(A.Frontier.empty());
  EXPECT_FALSE(A.TopCounters.empty());
  // Time-class counters are excluded from the top-k list by contract.
  for (const auto &KV : A.TopCounters)
    EXPECT_EQ(KV.first.find("_time_us"), std::string::npos) << KV.first;

  // The JSONL record parses and carries the full sbd-explain schema.
  JsonParseResult P = parseJson(A.json());
  ASSERT_TRUE(P.Ok) << P.Error;
  for (const char *Key :
       {"pattern", "script", "strategy", "timeout_ms", "max_states", "status",
        "stop_reason", "total_us", "states", "frontier_stride",
        "frontier_trace", "top_counters", "stats"})
    EXPECT_NE(P.Value.get(Key), nullptr) << Key;
  EXPECT_TRUE(P.Value.get("frontier_trace")->isArray());
  EXPECT_TRUE(P.Value.get("stats")->isObject());
}

TEST(SlowQueryLogTest, RingDropsOldestPastCapacity) {
  obs::SlowQueryLog &Log = obs::SlowQueryLog::global();
  (void)Log.drain();
  obs::SlowQueryOptions Opts;
  Opts.LatencyThresholdUs = 0;
  Opts.Capacity = 2;
  Log.configure(Opts);
  for (int I = 0; I != 4; ++I) {
    obs::SlowQueryArtifact A;
    A.TotalUs = I;
    Log.capture(std::move(A));
  }
  EXPECT_EQ(Log.size(), 2u);
  std::vector<obs::SlowQueryArtifact> Got = Log.drain();
  Log.configure(obs::SlowQueryOptions());
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].TotalUs, 2);
  EXPECT_EQ(Got[1].TotalUs, 3);
}

TEST(SlowQueryLogTest, NodeThresholdGatesCapture) {
  obs::SlowQueryLog &Log = obs::SlowQueryLog::global();
  obs::SlowQueryOptions Opts;
  Opts.NodeThreshold = 1000000; // far above any toy query
  Log.configure(Opts);
  EXPECT_TRUE(Log.armed());
  EXPECT_FALSE(Log.shouldCapture(/*TotalUs=*/50000, /*ArenaNodes=*/10));
  EXPECT_TRUE(Log.shouldCapture(/*TotalUs=*/0, /*ArenaNodes=*/2000000));
  Log.configure(obs::SlowQueryOptions());
  EXPECT_FALSE(Log.armed());
  EXPECT_FALSE(Log.shouldCapture(1000000, 1000000));
}

#endif // SBD_OBS

TEST(ExpositionTest, PrometheusTextHasCountersAndHistogramSeries) {
  obs::MetricsRegistry::global().reset();
  obs::HistogramRegistry::global().reset();
  (void)solvePattern("a{3}b*");
  std::string Text = obs::prometheusText();
  EXPECT_NE(Text.find("# TYPE sbd_queries_solved counter"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sbd_solve_latency_us histogram"),
            std::string::npos);
#if SBD_OBS
  EXPECT_NE(Text.find("sbd_queries_solved 1"), std::string::npos);
  EXPECT_NE(Text.find("sbd_solve_latency_us_count 1"), std::string::npos);
  EXPECT_NE(Text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
#else
  EXPECT_NE(Text.find("sbd_queries_solved 0"), std::string::npos);
  EXPECT_NE(Text.find("sbd_solve_latency_us_count 0"), std::string::npos);
#endif
  obs::MetricsRegistry::global().reset();
  obs::HistogramRegistry::global().reset();
}

TEST(ExpositionTest, SnapshotJsonParsesWithBothSections) {
  JsonParseResult R = parseJson(obs::snapshotJson());
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue *Counters = R.Value.get("counters");
  const JsonValue *Hists = R.Value.get("histograms");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Hists, nullptr);
  EXPECT_TRUE(Counters->isObject());
  EXPECT_TRUE(Hists->isObject());
  EXPECT_NE(Counters->get("derivative_calls"), nullptr);
  EXPECT_NE(Hists->get("dnf_expansion_arcs"), nullptr);
}

} // namespace
