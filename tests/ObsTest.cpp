//===- tests/ObsTest.cpp - Observability layer tests ------------------------===//
///
/// \file
/// The guarantees of the sbd::obs subsystem (support/Metrics.h,
/// support/Trace.h):
///   - the counter registry merges per-thread shards correctly, including
///     shards of threads that have already exited;
///   - tracing on vs off never changes a verdict or witness;
///   - the exported documents (Chrome trace, stats JSON) are valid JSON
///     with the advertised structure — validated with the in-tree parser.
///
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include "policy/Json.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace sbd;

namespace {

/// Solves one pattern on a fresh solver stack.
SolveResult solvePattern(const std::string &Pattern) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  return S.checkSat(parseRegexOrDie(M, Pattern));
}

TEST(MetricsTest, CounterNamesAreUniqueAndStable) {
  std::set<std::string> Names;
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    std::string Name = obs::counterName(static_cast<obs::Counter>(I));
    EXPECT_NE(Name, "?");
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
  }
}

TEST(MetricsTest, ShardArithmetic) {
  obs::MetricShard A, B;
  A.add(obs::Counter::DerivativeCalls, 5);
  A.add(obs::Counter::MemoHits, 2);
  B.add(obs::Counter::DerivativeCalls, 3);
  B += A;
  EXPECT_EQ(B.get(obs::Counter::DerivativeCalls), 8u);
  EXPECT_EQ(B.get(obs::Counter::MemoHits), 2u);
  obs::MetricShard D = B.since(A);
  EXPECT_EQ(D.get(obs::Counter::DerivativeCalls), 3u);
  EXPECT_EQ(D.get(obs::Counter::MemoHits), 0u);
  B.reset();
  EXPECT_EQ(B.get(obs::Counter::DerivativeCalls), 0u);
}

TEST(MetricsTest, ShardJsonParses) {
  obs::MetricShard S;
  S.add(obs::Counter::DnfCalls, 7);
  JsonParseResult R = parseJson(S.json());
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue *V = R.Value.get("dnf_calls");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asNumber(), 7.0);
  // Every counter must appear under its registered name.
  for (size_t I = 0; I != obs::NumCounters; ++I)
    EXPECT_NE(R.Value.get(obs::counterName(static_cast<obs::Counter>(I))),
              nullptr);
}

TEST(MetricsTest, SolveStatsJsonParses) {
  SolveStats St;
  St.DerivativeCalls = 11;
  St.DeriveUs = 42;
  JsonParseResult R = parseJson(St.json());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.get("derivative_calls")->asNumber(), 11.0);
  EXPECT_EQ(R.Value.get("derive_us")->asNumber(), 42.0);
  for (const char *Key :
       {"dnf_calls", "memo_hits", "arena_nodes", "peak_frontier", "parse_us",
        "dnf_us", "search_us", "total_us"})
    EXPECT_NE(R.Value.get(Key), nullptr) << Key;
}

#if SBD_OBS

TEST(MetricsTest, RegistrySeesSolverWork) {
  obs::MetricsRegistry::global().reset();
  SolveResult R = solvePattern("(ab)+&(ba)+");
  EXPECT_TRUE(R.isUnsat());
  obs::MetricShard Snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(Snap.get(obs::Counter::DerivativeCalls), 0u);
  EXPECT_GT(Snap.get(obs::Counter::DnfCalls), 0u);
  EXPECT_EQ(Snap.get(obs::Counter::QueriesSolved), 1u);
  // The per-query stats and the registry must agree on this single query.
  EXPECT_EQ(Snap.get(obs::Counter::DerivativeCalls), R.Stats.DerivativeCalls);
  EXPECT_EQ(Snap.get(obs::Counter::SolverSteps), R.Stats.SolverSteps);
  obs::MetricsRegistry::global().reset();
  EXPECT_EQ(obs::MetricsRegistry::global()
                .snapshot()
                .get(obs::Counter::DerivativeCalls),
            0u);
}

TEST(MetricsTest, ExitedThreadShardsFoldIntoSnapshot) {
  obs::MetricsRegistry::global().reset();
  std::thread Worker([] { obs::tlsShard().add(obs::Counter::Lookups, 123); });
  Worker.join();
  EXPECT_EQ(
      obs::MetricsRegistry::global().snapshot().get(obs::Counter::Lookups),
      123u);
}

#endif // SBD_OBS

TEST(TracerTest, OnOffVerdictParity) {
  const std::vector<std::string> Patterns = {
      "(.*\\d.*)&(.*[a-z].*)&.{4,12}",
      "(ab)+&(ba)+",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "~(.*ab.*)&.*a.*&.*b.*",
  };
  std::vector<SolveResult> Off, On;
  obs::Tracer::global().stop();
  for (const std::string &P : Patterns)
    Off.push_back(solvePattern(P));
  obs::Tracer::global().start();
  for (const std::string &P : Patterns)
    On.push_back(solvePattern(P));
  obs::Tracer::global().stop();
  for (size_t I = 0; I != Patterns.size(); ++I) {
    EXPECT_EQ(Off[I].Status, On[I].Status) << Patterns[I];
    EXPECT_EQ(Off[I].Witness, On[I].Witness) << Patterns[I];
    EXPECT_EQ(Off[I].StatesExplored, On[I].StatesExplored) << Patterns[I];
  }
#if SBD_OBS
  EXPECT_GT(obs::Tracer::global().eventCount(), 0u);
#endif
  obs::Tracer::global().clear();
}

#if SBD_OBS

TEST(TracerTest, ChromeTraceJsonIsValid) {
  obs::Tracer::global().start();
  {
    obs::ScopedSpan Outer("outer", "test");
    Outer.arg("pattern", std::string("a\"b\\c")); // needs escaping
    Outer.arg("count", uint64_t(3));
    obs::ScopedSpan Inner("inner", "test");
  }
  (void)solvePattern("a{3}b*");
  obs::Tracer::global().stop();
  std::string Doc = obs::Tracer::global().chromeTraceJson();
  obs::Tracer::global().clear();

  JsonParseResult R = parseJson(Doc);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << Doc;
  const JsonValue *Events = R.Value.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_GE(Events->asArray().size(), 3u); // outer, inner, checkSat
  bool SawOuter = false;
  for (const JsonValue &E : Events->asArray()) {
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_NE(E.get("ph"), nullptr);
    EXPECT_EQ(E.get("ph")->asString(), "X");
    ASSERT_NE(E.get("ts"), nullptr);
    ASSERT_NE(E.get("dur"), nullptr);
    ASSERT_NE(E.get("tid"), nullptr);
    if (E.get("name")->asString() == "outer") {
      SawOuter = true;
      const JsonValue *Args = E.get("args");
      ASSERT_NE(Args, nullptr);
      EXPECT_EQ(Args->get("pattern")->asString(), "a\"b\\c");
      EXPECT_EQ(Args->get("count")->asNumber(), 3.0);
    }
  }
  EXPECT_TRUE(SawOuter);
}

TEST(TracerTest, SpansDeadWhenTracerOff) {
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  {
    obs::ScopedSpan Span("dead", "test");
    Span.arg("ignored", uint64_t(1));
  }
  EXPECT_EQ(obs::Tracer::global().eventCount(), 0u);
}

#endif // SBD_OBS

} // namespace
