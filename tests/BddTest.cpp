//===- tests/BddTest.cpp - BDD character-algebra tests ------------------------===//

#include "charset/Bdd.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

CharSet randomSet(Rng &R) {
  size_t N = R.below(6);
  std::vector<CharRange> Rs;
  for (size_t I = 0; I != N; ++I) {
    uint32_t Lo = static_cast<uint32_t>(R.below(MaxCodePoint));
    uint32_t Hi = std::min<uint32_t>(
        Lo + static_cast<uint32_t>(R.below(5000)), MaxCodePoint);
    Rs.push_back({Lo, Hi});
  }
  return CharSet::fromRanges(std::move(Rs));
}

TEST(Bdd, TerminalsAndDomain) {
  BddManager B;
  EXPECT_TRUE(B.isEmpty(B.falseBdd()));
  EXPECT_FALSE(B.isEmpty(B.domain()));
  EXPECT_EQ(B.satCount(B.domain()), uint64_t(MaxCodePoint) + 1);
  EXPECT_EQ(B.toCharSet(B.domain()), CharSet::full());
}

TEST(Bdd, RoundTripNamedClasses) {
  BddManager B;
  for (const CharSet &S : {CharSet::digit(), CharSet::word(),
                           CharSet::space(), CharSet::asciiLetter(),
                           CharSet::full(), CharSet()}) {
    BddRef R = B.fromCharSet(S);
    EXPECT_EQ(B.toCharSet(R), S);
    EXPECT_EQ(B.satCount(R), S.count());
  }
}

TEST(Bdd, ContainsMatchesCharSet) {
  BddManager B;
  CharSet S = CharSet::word();
  BddRef R = B.fromCharSet(S);
  for (uint32_t Cp : {uint32_t('a'), uint32_t('_'), uint32_t('!'),
                      uint32_t(0x4E2D), uint32_t(0), MaxCodePoint})
    EXPECT_EQ(B.contains(R, Cp), S.contains(Cp)) << Cp;
}

TEST(Bdd, ExtensionalityByCanonicity) {
  BddManager B;
  // Same denotation reached via different constructions ⇒ identical refs.
  BddRef A = B.bddOr(B.fromCharSet(CharSet::range('a', 'f')),
                     B.fromCharSet(CharSet::range('d', 'k')));
  BddRef C = B.fromCharSet(CharSet::range('a', 'k'));
  EXPECT_TRUE(B.equal(A, C));
  EXPECT_EQ(A.Id, C.Id);
}

TEST(Bdd, DomainRelativeComplement) {
  BddManager B;
  BddRef D = B.fromCharSet(CharSet::digit());
  BddRef NotD = B.bddNot(D);
  EXPECT_EQ(B.toCharSet(NotD), CharSet::digit().complement());
  // Involution.
  EXPECT_TRUE(B.equal(B.bddNot(NotD), D));
  // Complement never escapes the domain.
  EXPECT_EQ(B.satCount(B.bddOr(D, NotD)), uint64_t(MaxCodePoint) + 1);
}

class BddPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddPropertyTest, OperationsAgreeWithIntervalAlgebra) {
  BddManager B;
  Rng R(GetParam());
  for (int I = 0; I != 6; ++I) {
    CharSet X = randomSet(R), Y = randomSet(R);
    BddRef Bx = B.fromCharSet(X), By = B.fromCharSet(Y);
    EXPECT_EQ(B.toCharSet(B.bddAnd(Bx, By)), X.intersectWith(Y));
    EXPECT_EQ(B.toCharSet(B.bddOr(Bx, By)), X.unionWith(Y));
    EXPECT_EQ(B.toCharSet(B.bddNot(Bx)), X.complement());
    EXPECT_EQ(B.satCount(Bx), X.count());
    // Extensionality across both algebras: structural equality of interval
    // sets iff ref equality of BDDs.
    EXPECT_EQ(X == Y, B.equal(Bx, By));
    // Round trip.
    EXPECT_EQ(B.toCharSet(Bx), X);
  }
}

TEST_P(BddPropertyTest, DeMorganOnRefs) {
  BddManager B;
  Rng R(GetParam());
  CharSet X = randomSet(R), Y = randomSet(R);
  BddRef Bx = B.fromCharSet(X), By = B.fromCharSet(Y);
  EXPECT_TRUE(B.equal(B.bddNot(B.bddOr(Bx, By)),
                      B.bddAnd(B.bddNot(Bx), B.bddNot(By))));
  EXPECT_TRUE(B.equal(B.bddNot(B.bddAnd(Bx, By)),
                      B.bddOr(B.bddNot(Bx), B.bddNot(By))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
