//===- tests/AutomataTest.cpp - Symbolic NFA/DFA + eager baseline tests ------===//

#include "automata/EagerSolver.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class AutomataTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  Snfa nfa(const std::string &Pat) {
    auto A = compileReToNfa(M, re(Pat));
    EXPECT_TRUE(A.has_value()) << Pat;
    return std::move(*A);
  }
};

TEST_F(AutomataTest, NfaBasicAcceptance) {
  EXPECT_TRUE(nfa("abc").accepts(fromUtf8("abc")));
  EXPECT_FALSE(nfa("abc").accepts(fromUtf8("ab")));
  EXPECT_TRUE(nfa("a*b").accepts(fromUtf8("aaab")));
  EXPECT_TRUE(nfa("a*").acceptsEmptyWord());
  EXPECT_FALSE(nfa("a+").acceptsEmptyWord());
  EXPECT_TRUE(nfa("(a|b){2,3}").accepts(fromUtf8("aba")));
  EXPECT_FALSE(nfa("(a|b){2,3}").accepts(fromUtf8("a")));
}

TEST_F(AutomataTest, NfaRefusesExtendedOperators) {
  // (a&b collapses to ⊥ in the regex algebra, so use intersections the
  // constructors cannot see through.)
  EXPECT_FALSE(compileReToNfa(M, re("(ab)&(cd)")).has_value());
  EXPECT_FALSE(compileReToNfa(M, re("~a")).has_value());
}

TEST_F(AutomataTest, LoopUnrollBudget) {
  EXPECT_FALSE(compileReToNfa(M, re("a{1000}"), /*MaxStates=*/100).has_value());
  EXPECT_TRUE(compileReToNfa(M, re("a{50}"), /*MaxStates=*/150).has_value());
}

TEST_F(AutomataTest, NfaAgreesWithMatcherOnRandomRe) {
  Rng Rand(11);
  const char *Patterns[] = {"(a|b)*abb", "a(b|c)*d?", "(ab)*|(ba)*",
                            "a{2,4}b{0,2}", "\\d+[a-f]*", "(a?b){3}"};
  static const uint32_t Alphabet[] = {'a', 'b', 'c', 'd', '5', 'f'};
  for (const char *P : Patterns) {
    Re R = re(P);
    Snfa A = nfa(P);
    for (int I = 0; I != 60; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(7);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(A.accepts(W), E.matches(R, W)) << P;
    }
  }
}

TEST_F(AutomataTest, DeterminizeAgreesWithNfa) {
  Rng Rand(13);
  const char *Patterns[] = {"(a|b)*abb", "(ab)*|(ba)*", "\\d+[a-f]*",
                            "a{2,4}"};
  static const uint32_t Alphabet[] = {'a', 'b', '5', 'f'};
  for (const char *P : Patterns) {
    Snfa A = nfa(P);
    auto D = Sdfa::determinize(A, 0);
    ASSERT_TRUE(D.has_value());
    for (int I = 0; I != 60; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(7);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(D->accepts(W), A.accepts(W)) << P;
    }
  }
}

TEST_F(AutomataTest, DfaCompleteness) {
  // Every state's outgoing guards must partition the full alphabet — the
  // invariant that makes complement a final-flip.
  auto D = Sdfa::determinize(nfa("(a|b)*abb"), 0);
  ASSERT_TRUE(D.has_value());
  for (const auto &Out : D->Trans) {
    CharSet Union;
    for (const auto &[Guard, To] : Out) {
      EXPECT_TRUE(Union.isDisjointFrom(Guard));
      Union = Union.unionWith(Guard);
    }
    EXPECT_TRUE(Union.isFull());
  }
}

TEST_F(AutomataTest, ComplementAndProduct) {
  auto D = Sdfa::determinize(nfa("(a|b)*abb"), 0);
  ASSERT_TRUE(D.has_value());
  Sdfa NotD = D->complement();
  EXPECT_NE(D->accepts(fromUtf8("abb")), NotD.accepts(fromUtf8("abb")));
  EXPECT_NE(D->accepts(fromUtf8("ab")), NotD.accepts(fromUtf8("ab")));

  auto D2 = Sdfa::determinize(nfa("a(a|b)*"), 0);
  ASSERT_TRUE(D2.has_value());
  auto Inter = Sdfa::product(*D, *D2, /*IsUnion=*/false, 0);
  ASSERT_TRUE(Inter.has_value());
  EXPECT_TRUE(Inter->accepts(fromUtf8("abb")));
  EXPECT_FALSE(Inter->accepts(fromUtf8("babb"))); // starts with b ∉ a(a|b)*
  auto Uni = Sdfa::product(*D, *D2, /*IsUnion=*/true, 0);
  ASSERT_TRUE(Uni.has_value());
  EXPECT_TRUE(Uni->accepts(fromUtf8("babb")));
  EXPECT_TRUE(Uni->accepts(fromUtf8("a")));
}

TEST_F(AutomataTest, MinimizationPreservesLanguage) {
  Rng Rand(17);
  const char *Patterns[] = {"(a|b)*abb", "(ab)*|(ba)*", "a{2,4}b?",
                            "\\d+[a-f]*", "(a|b)*(aa|bb)(a|b)*"};
  static const uint32_t Alphabet[] = {'a', 'b', '5', 'f'};
  for (const char *P : Patterns) {
    auto D = Sdfa::determinize(nfa(P), 0);
    ASSERT_TRUE(D.has_value());
    Sdfa Min = D->minimize();
    EXPECT_LE(Min.numStates(), D->numStates());
    for (int I = 0; I != 80; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(8);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(Min.accepts(W), D->accepts(W)) << P;
    }
    // Idempotence: minimizing a minimal DFA changes nothing.
    EXPECT_EQ(Min.minimize().numStates(), Min.numStates()) << P;
  }
}

TEST_F(AutomataTest, MinimizationReachesCanonicalSize) {
  // The minimal complete DFA of (a|b)*abb over Σ has 4 live states plus a
  // sink for characters outside {a,b}: 5 states total.
  auto D = Sdfa::determinize(nfa("(a|b)*abb"), 0);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->minimize().numStates(), 5u);

  // Equivalent regexes minimize to the same number of states.
  auto D1 = Sdfa::determinize(nfa("(a|b)*"), 0);
  auto D2 = Sdfa::determinize(nfa("(a*b*)*"), 0);
  ASSERT_TRUE(D1 && D2);
  EXPECT_EQ(D1->minimize().numStates(), D2->minimize().numStates());
}

TEST_F(AutomataTest, MinimizationMergesSymbolicGuards) {
  // a|b|c determinizes with one guard [a-c]; states reached by each letter
  // are equivalent and must merge.
  auto D = Sdfa::determinize(nfa("(a|b|c)x"), 0);
  ASSERT_TRUE(D.has_value());
  Sdfa Min = D->minimize();
  // init, mid, accept, sink.
  EXPECT_EQ(Min.numStates(), 4u);
}

TEST_F(AutomataTest, WitnessSearch) {
  auto W = nfa("a{3}b").findWitness();
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(toUtf8(*W), "aaab");
  EXPECT_FALSE(Snfa::empty().findWitness().has_value());
}

class EagerSolverTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Reference{E};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(EagerSolverTest, AgreesWithDerivativeSolver) {
  EagerSolver Eager(M);
  const char *Patterns[] = {
      "abc",
      "a+&b+",
      "(ab)+&(ba)+",
      "(.*a.*)&(.*b.*)",
      "~(.*)",
      "~(ab)",
      "(.*\\d.*)&~(.*01.*)",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "(.*a.{3})&(.*b.{3})",
      "a{2,4}&a{5,6}",
      "a{2,4}&a{4,6}",
  };
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult Ref = Reference.checkSat(R);
    SolveResult Got = Eager.solve(R);
    ASSERT_NE(Ref.Status, SolveStatus::Unknown);
    ASSERT_NE(Got.Status, SolveStatus::Unknown) << P;
    EXPECT_EQ(Got.Status, Ref.Status) << P;
    if (Got.isSat()) {
      EXPECT_TRUE(E.matches(R, Got.Witness)) << P;
    }
  }
}

TEST_F(EagerSolverTest, BlowupConsumesStates) {
  // The eager pipeline pays exponentially in k on the blowup family while
  // the derivative solver stays small — the paper's headline contrast.
  EagerSolver Eager(M);
  size_t Prev = 0;
  for (uint32_t K : {2u, 4u, 6u}) {
    std::string P = "(.*a.{" + std::to_string(K) + "})&(.*b.{" +
                    std::to_string(K) + "})";
    SolveResult Got = Eager.solve(re(P));
    EXPECT_TRUE(Got.isUnsat()) << P;
    EXPECT_GT(Eager.lastStatesBuilt(), Prev);
    Prev = Eager.lastStatesBuilt();
  }
  // Growth from k=2 to k=6 should be clearly super-linear (>8x).
  SolveResult Small = Eager.solve(re("(.*a.{2})&(.*b.{2})"));
  size_t SmallStates = Eager.lastStatesBuilt();
  SolveResult Big = Eager.solve(re("(.*a.{6})&(.*b.{6})"));
  size_t BigStates = Eager.lastStatesBuilt();
  EXPECT_TRUE(Small.isUnsat());
  EXPECT_TRUE(Big.isUnsat());
  EXPECT_GT(BigStates, 8 * SmallStates);
}

TEST_F(EagerSolverTest, BudgetsReportUnknown) {
  EagerSolver Eager(M);
  SolveOptions Opts;
  Opts.MaxStates = 50;
  SolveResult Got = Eager.solve(re("(.*a.{10})&(.*b.{10})"), Opts);
  EXPECT_EQ(Got.Status, SolveStatus::Unknown);
}

TEST_F(EagerSolverTest, MinimizePolicyAgrees) {
  EagerSolver Plain(M);
  EagerSolver Minimizing(M, EagerSolver::Policy::DeterminizeMinimize);
  const char *Patterns[] = {"(.*a.*)&(.*b.*)", "a+&b+", "~(ab)",
                            "(.*\\d.*)&~(.*01.*)", "(.*a.{3})&(.*b.{3})"};
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult A = Plain.solve(R);
    SolveResult B = Minimizing.solve(R);
    ASSERT_NE(A.Status, SolveStatus::Unknown) << P;
    EXPECT_EQ(B.Status, A.Status) << P;
    if (B.isSat()) {
      EXPECT_TRUE(E.matches(R, B.Witness)) << P;
    }
  }
}

TEST_F(EagerSolverTest, NfaProductPolicy) {
  EagerSolver Eager(M, EagerSolver::Policy::NfaProduct);
  // The ablation policy agrees on results; it only shifts where the cost is.
  EXPECT_TRUE(Eager.solve(re("(.*a.*)&(.*b.*)")).isSat());
  EXPECT_TRUE(Eager.solve(re("a+&b+")).isUnsat());
  EXPECT_TRUE(Eager.solve(re("~(ab)&ab")).isUnsat());
}

} // namespace
