//===- tests/SbfaTest.cpp - SBFA / SAFA tests (Section 7, 8.3) --------------===//

#include "automata/Safa.h"
#include "automata/Sbfa.h"

#include "re/RegexParser.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class SbfaTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  Sbfa build(const std::string &Pat) {
    auto A = Sbfa::build(E, re(Pat));
    EXPECT_TRUE(A.has_value());
    return std::move(*A);
  }
};

TEST_F(SbfaTest, TrivialAutomata) {
  Sbfa Bot = build("[]");
  EXPECT_FALSE(Bot.accepts({}));
  EXPECT_FALSE(Bot.accepts({'a'}));

  Sbfa Top = build(".*");
  EXPECT_TRUE(Top.accepts({}));
  EXPECT_TRUE(Top.accepts({'a', 'b'}));

  Sbfa Eps = build("()");
  EXPECT_TRUE(Eps.accepts({}));
  EXPECT_FALSE(Eps.accepts({'a'}));
}

TEST_F(SbfaTest, Example74StateSpace) {
  // Fig. 5 / Example 7.4: r = rl & rd has states {⊥, .*, r, rl, rd}.
  Sbfa A = build("(.*[a-z].*)&(.*\\d.*)");
  EXPECT_EQ(A.numStates(), 5u);
  EXPECT_TRUE(A.stateOf(re(".*[a-z].*")).has_value());
  EXPECT_TRUE(A.stateOf(re(".*\\d.*")).has_value());
  // The bottom state is not final; .* is.
  EXPECT_FALSE(A.isFinal(A.bottomState()));
  EXPECT_TRUE(A.isFinal(A.topState()));
}

TEST_F(SbfaTest, StatesAreAtomic) {
  // Section 7 granularity: no state except possibly ι is a Boolean node.
  Sbfa A = build("((ab)|~(cd*))&(.*\\d.*)");
  for (uint32_t Q = 0; Q != A.numStates(); ++Q) {
    if (Q == A.initialState())
      continue;
    RegexKind K = M.kind(A.states()[Q]);
    EXPECT_NE(K, RegexKind::Inter);
    EXPECT_NE(K, RegexKind::Compl);
    EXPECT_NE(K, RegexKind::Union);
  }
}

TEST_F(SbfaTest, Theorem72AcceptanceAgreesWithMatcher) {
  const char *Patterns[] = {
      "ab",          "a*b",         "(a|b)*abb",        ".*\\d.*",
      "~(.*01.*)",   "(.*a.*)&(.*b.*)", "~(ab)",        "a{2,4}",
      "(.*\\d.*)&~(.*01.*)", "((ab)*)&((a|b){0,6})",
  };
  const char *Words[] = {"",   "a",   "b",    "ab",  "ba",  "abb",
                         "01", "0a1", "aabb", "a0b", "abab", "aaaa"};
  for (const char *P : Patterns) {
    Re R = re(P);
    Sbfa A = build(P);
    for (const char *W : Words) {
      std::vector<uint32_t> Word = fromUtf8(W);
      EXPECT_EQ(A.accepts(Word), E.matches(R, Word))
          << "SBFA disagrees with matcher on " << P << " / \"" << W << "\"";
    }
  }
}

TEST_F(SbfaTest, StateBudget) {
  auto A = Sbfa::build(E, re("(.*a.{12})&(.*b.{12})"), /*MaxStates=*/5);
  EXPECT_FALSE(A.has_value());
}

TEST_F(SbfaTest, SafaConversionPreservesLanguage) {
  const char *Patterns[] = {
      "ab",        "a*b",      ".*\\d.*",  "~(.*01.*)",
      "(.*a.*)&(.*b.*)",       "~(ab)",    "(.*\\d.*)&~(.*01.*)",
  };
  const char *Words[] = {"",   "a",  "ab",  "01",  "0a1",
                         "a0", "b9", "aabb", "zzz"};
  for (const char *P : Patterns) {
    Sbfa A = build(P);
    Safa S = Safa::fromSbfa(A);
    EXPECT_EQ(S.numStates(), 2 * A.numStates()); // negated shadows
    for (const char *W : Words) {
      std::vector<uint32_t> Word = fromUtf8(W);
      EXPECT_EQ(S.accepts(Word), A.accepts(Word))
          << "SAFA disagrees with SBFA on " << P << " / \"" << W << "\"";
    }
  }
}

TEST_F(SbfaTest, SafaTargetsArePositive) {
  Sbfa A = build("~(.*01.*)&(.*\\d.*)");
  Safa S = Safa::fromSbfa(A);
  for (const Safa::Transition &Tr : S.transitions())
    EXPECT_TRUE(S.exprManager().isPositive(Tr.Target));
  EXPECT_TRUE(S.exprManager().isPositive(S.initial()));
}

/// Theorem 7.3 property: |Q| ≤ ♯(R)+3 for clean, normalized, loop-free
/// B(RE), on random instances.
class Theorem73Test : public ::testing::TestWithParam<uint64_t> {};

Re randomPlainRe(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(3)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.pred(CharSet::range('a', 'm'));
    default:
      return M.anyChar();
    }
  }
  switch (R.below(6)) {
  case 0:
  case 1:
    return M.concat(randomPlainRe(M, R, Depth - 1),
                    randomPlainRe(M, R, Depth - 1));
  case 2:
    return M.union_(randomPlainRe(M, R, Depth - 1),
                    randomPlainRe(M, R, Depth - 1));
  case 3:
    return M.star(randomPlainRe(M, R, Depth - 1));
  default:
    return randomPlainRe(M, R, 0);
  }
}

Re randomBre(RegexManager &M, Rng &R, int BoolDepth, int ReDepth) {
  if (BoolDepth <= 0)
    return randomPlainRe(M, R, ReDepth);
  switch (R.below(4)) {
  case 0:
    return M.union_(randomBre(M, R, BoolDepth - 1, ReDepth),
                    randomBre(M, R, BoolDepth - 1, ReDepth));
  case 1:
    return M.inter(randomBre(M, R, BoolDepth - 1, ReDepth),
                   randomBre(M, R, BoolDepth - 1, ReDepth));
  case 2:
    return M.complement(randomBre(M, R, BoolDepth - 1, ReDepth));
  default:
    return randomPlainRe(M, R, ReDepth);
  }
}

TEST_P(Theorem73Test, LinearStateBound) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());
  for (int I = 0; I != 10; ++I) {
    Re R = randomBre(M, Rand, 2, 3);
    if (!M.isClean(R) || !M.isBooleanOverRe(R))
      continue; // constructors may have collapsed to ⊥ or escaped B(RE)
    ASSERT_TRUE(M.isNormalized(R));
    ASSERT_TRUE(M.isLoopFree(R));
    auto A = Sbfa::build(E, R);
    ASSERT_TRUE(A.has_value());
    EXPECT_LE(A->numStates(), static_cast<size_t>(M.node(R).NumPreds) + 3)
        << "Theorem 7.3 bound violated for " << M.toString(R);
  }
}

TEST_P(Theorem73Test, AcceptanceOnRandomBre) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());
  static const uint32_t Alphabet[] = {'a', 'b', 'c', '3', 'q'};
  for (int I = 0; I != 5; ++I) {
    Re R = randomBre(M, Rand, 2, 2);
    auto A = Sbfa::build(E, R, /*MaxStates=*/2000);
    if (!A)
      continue;
    for (int W = 0; W != 15; ++W) {
      std::vector<uint32_t> Word;
      size_t Len = Rand.below(5);
      for (size_t J = 0; J != Len; ++J)
        Word.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(A->accepts(Word), E.matches(R, Word))
          << "SBFA run disagrees with matcher on " << M.toString(R);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem73Test,
                         ::testing::Range<uint64_t>(1, 31));

} // namespace
