//===- tests/SupportTest.cpp - Support utility tests -------------------------===//

#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Stopwatch.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

#include <set>

using namespace sbd;

namespace {

TEST(Unicode, Utf8RoundTripAscii) {
  std::vector<uint32_t> Word = {'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(toUtf8(Word), "hello");
  EXPECT_EQ(fromUtf8("hello"), Word);
}

TEST(Unicode, Utf8RoundTripAllWidths) {
  // One char per encoding width: 1, 2, 3, 4 bytes.
  std::vector<uint32_t> Word = {0x41, 0x3B1, 0x4E2D, 0x1F600};
  std::string Bytes = toUtf8(Word);
  EXPECT_EQ(Bytes.size(), 1u + 2 + 3 + 4);
  EXPECT_EQ(fromUtf8(Bytes), Word);
}

TEST(Unicode, Utf8RoundTripExhaustiveBoundaries) {
  // Boundary code points of each width class.
  for (uint32_t Cp : {0u, 0x7Fu, 0x80u, 0x7FFu, 0x800u, 0xFFFFu, 0x10000u,
                      0x10FFFFu}) {
    std::string Bytes;
    appendUtf8(Cp, Bytes);
    std::vector<uint32_t> Back = fromUtf8(Bytes);
    ASSERT_EQ(Back.size(), 1u) << Cp;
    EXPECT_EQ(Back[0], Cp);
  }
}

TEST(Unicode, InvalidBytesDecodeLossily) {
  // A lone continuation byte and a truncated sequence must not crash and
  // decode to U+FFFD.
  std::vector<uint32_t> Out = fromUtf8(std::string("\x80"));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 0xFFFDu);
  Out = fromUtf8(std::string("\xE4\xB8")); // truncated 3-byte seq
  EXPECT_FALSE(Out.empty());
}

TEST(Unicode, Escaping) {
  EXPECT_EQ(escapeCodePoint('a'), "a");
  EXPECT_EQ(escapeCodePoint('\\'), "\\\\");
  EXPECT_EQ(escapeCodePoint(0x07), "\\u0007");
  EXPECT_EQ(escapeCodePoint(0x1F600), "\\U{01F600}");
  EXPECT_EQ(escapeWord({'a', 0x07}), "a\\u0007");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.below(10), 10u);
    uint64_t V = R.range(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
  }
}

TEST(Rng, RoughUniformity) {
  Rng R(99);
  size_t Buckets[8] = {};
  for (int I = 0; I != 8000; ++I)
    ++Buckets[R.below(8)];
  for (size_t B : Buckets) {
    EXPECT_GT(B, 800u); // each bucket within ±20% of expectation
    EXPECT_LT(B, 1200u);
  }
}

TEST(Hashing, MixSpreadsBits) {
  // Adjacent inputs must produce well-separated hashes.
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 1000; ++I)
    Seen.insert(hashMix(I));
  EXPECT_EQ(Seen.size(), 1000u);
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1)); // order sensitive
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch W;
  volatile uint64_t Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink += static_cast<uint64_t>(I);
  EXPECT_GE(W.elapsedUs(), 0);
  int64_t First = W.elapsedUs();
  for (int I = 0; I != 100000; ++I)
    Sink += static_cast<uint64_t>(I);
  EXPECT_GE(W.elapsedUs(), First);
  W.reset();
  EXPECT_LE(W.elapsedUs(), First + 1000000);
}

} // namespace
