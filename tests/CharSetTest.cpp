//===- tests/CharSetTest.cpp - Character algebra unit + property tests -----===//

#include "charset/CharSet.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

TEST(CharSet, EmptyAndFull) {
  CharSet E;
  EXPECT_TRUE(E.isEmpty());
  EXPECT_FALSE(E.isFull());
  EXPECT_EQ(E.count(), 0u);
  EXPECT_FALSE(E.contains('a'));
  EXPECT_EQ(E.minElement(), std::nullopt);

  CharSet F = CharSet::full();
  EXPECT_TRUE(F.isFull());
  EXPECT_FALSE(F.isEmpty());
  EXPECT_EQ(F.count(), uint64_t(MaxCodePoint) + 1);
  EXPECT_TRUE(F.contains(0));
  EXPECT_TRUE(F.contains(MaxCodePoint));
}

TEST(CharSet, SingletonAndRange) {
  CharSet S = CharSet::singleton('x');
  EXPECT_EQ(S.count(), 1u);
  EXPECT_TRUE(S.contains('x'));
  EXPECT_FALSE(S.contains('y'));

  CharSet R = CharSet::range('a', 'z');
  EXPECT_EQ(R.count(), 26u);
  EXPECT_TRUE(R.contains('a'));
  EXPECT_TRUE(R.contains('m'));
  EXPECT_FALSE(R.contains('A'));
}

TEST(CharSet, FromRangesCoalesces) {
  // Overlapping and adjacent ranges must coalesce into canonical form.
  CharSet S = CharSet::fromRanges({{5, 10}, {11, 20}, {15, 30}, {40, 41}});
  ASSERT_EQ(S.ranges().size(), 2u);
  EXPECT_EQ(S.ranges()[0].Lo, 5u);
  EXPECT_EQ(S.ranges()[0].Hi, 30u);
  EXPECT_EQ(S.ranges()[1].Lo, 40u);
  EXPECT_EQ(S.ranges()[1].Hi, 41u);
}

TEST(CharSet, CanonicityGivesExtensionality) {
  // Same denotation, different construction order ⇒ identical value.
  CharSet A = CharSet::range('a', 'f').unionWith(CharSet::range('d', 'k'));
  CharSet B = CharSet::range('a', 'k');
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(CharSet, UnionIntersectComplementBasics) {
  CharSet D = CharSet::digit();
  CharSet W = CharSet::word();
  EXPECT_TRUE(D.isSubsetOf(W));
  EXPECT_EQ(D.intersectWith(W), D);
  EXPECT_EQ(D.unionWith(W), W);
  EXPECT_TRUE(D.isDisjointFrom(CharSet::asciiLetter()));
  EXPECT_FALSE(W.isDisjointFrom(CharSet::asciiLetter()));

  CharSet NotD = D.complement();
  EXPECT_TRUE(D.isDisjointFrom(NotD));
  EXPECT_EQ(D.unionWith(NotD), CharSet::full());
  EXPECT_EQ(NotD.complement(), D);
}

TEST(CharSet, MinusAndSubset) {
  CharSet W = CharSet::word();
  CharSet D = CharSet::digit();
  CharSet WnoD = W.minus(D);
  EXPECT_EQ(WnoD.count(), W.count() - D.count());
  EXPECT_FALSE(WnoD.contains('5'));
  EXPECT_TRUE(WnoD.contains('a'));
  EXPECT_TRUE(WnoD.isSubsetOf(W));
}

TEST(CharSet, SamplePrefersPrintable) {
  // A set containing control chars and 'q' should sample a printable char.
  CharSet S = CharSet::fromRanges({{0, 8}, {'q', 'q'}});
  auto C = S.sample();
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(*C, uint32_t('q'));
  EXPECT_EQ(S.minElement(), std::make_optional<uint32_t>(0));
}

TEST(CharSet, StrRendering) {
  EXPECT_EQ(CharSet().str(), "[]");
  EXPECT_EQ(CharSet::full().str(), ".");
  EXPECT_EQ(CharSet::digit().str(), "\\d");
  EXPECT_EQ(CharSet::word().str(), "\\w");
  EXPECT_EQ(CharSet::singleton('a').str(), "a");
  EXPECT_EQ(CharSet::singleton('*').str(), "\\*");
  EXPECT_EQ(CharSet::range('a', 'f').str(), "[a-f]");
}

TEST(CharSet, MintermsOfDisjointSets) {
  std::vector<CharSet> Sets = {CharSet::digit(), CharSet::asciiLetter()};
  std::vector<CharSet> Mt = computeMinterms(Sets);
  // digits, letters, everything else.
  EXPECT_EQ(Mt.size(), 3u);
}

TEST(CharSet, MintermsOfOverlappingSets) {
  std::vector<CharSet> Sets = {CharSet::word(), CharSet::digit()};
  std::vector<CharSet> Mt = computeMinterms(Sets);
  // word∧digit, word∧¬digit, ¬word (¬digit); the signature digit∧¬word is
  // unsatisfiable and must not appear.
  EXPECT_EQ(Mt.size(), 3u);
}

/// Property sweep: algebra axioms hold on randomly generated sets.
class CharSetPropertyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  static CharSet randomSet(Rng &R) {
    size_t N = R.below(5);
    std::vector<CharRange> Rs;
    for (size_t I = 0; I != N; ++I) {
      uint32_t Lo = static_cast<uint32_t>(R.below(1000));
      uint32_t Hi = Lo + static_cast<uint32_t>(R.below(200));
      Rs.push_back({Lo, Hi});
    }
    // Occasionally include an astral-plane range to exercise full Unicode.
    if (R.chance(1, 4)) {
      uint32_t Lo = 0x10000 + static_cast<uint32_t>(R.below(0x1000));
      Rs.push_back({Lo, Lo + static_cast<uint32_t>(R.below(0x100))});
    }
    return CharSet::fromRanges(std::move(Rs));
  }
};

TEST_P(CharSetPropertyTest, BooleanAlgebraAxioms) {
  Rng R(GetParam());
  CharSet A = randomSet(R), B = randomSet(R), C = randomSet(R);

  // De Morgan.
  EXPECT_EQ(A.unionWith(B).complement(),
            A.complement().intersectWith(B.complement()));
  EXPECT_EQ(A.intersectWith(B).complement(),
            A.complement().unionWith(B.complement()));
  // Involution, distributivity, absorption.
  EXPECT_EQ(A.complement().complement(), A);
  EXPECT_EQ(A.intersectWith(B.unionWith(C)),
            A.intersectWith(B).unionWith(A.intersectWith(C)));
  EXPECT_EQ(A.unionWith(A.intersectWith(B)), A);
  // Commutativity.
  EXPECT_EQ(A.unionWith(B), B.unionWith(A));
  EXPECT_EQ(A.intersectWith(B), B.intersectWith(A));
}

TEST_P(CharSetPropertyTest, MembershipAgreesWithOps) {
  Rng R(GetParam());
  CharSet A = randomSet(R), B = randomSet(R);
  for (int I = 0; I != 200; ++I) {
    uint32_t Cp = static_cast<uint32_t>(R.below(1500));
    EXPECT_EQ(A.unionWith(B).contains(Cp), A.contains(Cp) || B.contains(Cp));
    EXPECT_EQ(A.intersectWith(B).contains(Cp),
              A.contains(Cp) && B.contains(Cp));
    EXPECT_EQ(A.complement().contains(Cp), !A.contains(Cp));
  }
}

TEST_P(CharSetPropertyTest, MintermsPartitionDomain) {
  Rng R(GetParam());
  std::vector<CharSet> Sets = {randomSet(R), randomSet(R), randomSet(R)};
  std::vector<CharSet> Mt = computeMinterms(Sets);
  ASSERT_FALSE(Mt.empty());
  CharSet All;
  for (size_t I = 0; I != Mt.size(); ++I) {
    EXPECT_FALSE(Mt[I].isEmpty());
    for (size_t J = I + 1; J != Mt.size(); ++J)
      EXPECT_TRUE(Mt[I].isDisjointFrom(Mt[J]));
    All = All.unionWith(Mt[I]);
    // Refinement: each minterm is inside or outside every input set.
    for (const CharSet &S : Sets)
      EXPECT_TRUE(Mt[I].isSubsetOf(S) || Mt[I].isDisjointFrom(S));
  }
  EXPECT_TRUE(All.isFull());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharSetPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
