//===- tests/CachedMatcherTest.cpp - SRM-style matcher tests -----------------===//

#include "core/CachedMatcher.h"

#include "re/RegexParser.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class CachedMatcherTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(CachedMatcherTest, BasicAcceptance) {
  CachedMatcher Matcher(E, re("a*b"));
  EXPECT_TRUE(Matcher.matches(std::string("b")));
  EXPECT_TRUE(Matcher.matches(std::string("aaab")));
  EXPECT_FALSE(Matcher.matches(std::string("a")));
  EXPECT_FALSE(Matcher.matches(std::string("ba")));
  EXPECT_FALSE(Matcher.matches(std::string("")));
}

TEST_F(CachedMatcherTest, ExtendedOperators) {
  CachedMatcher Matcher(E, re("(.*\\d.*)&~(.*01.*)"));
  EXPECT_TRUE(Matcher.matches(std::string("x7y")));
  EXPECT_FALSE(Matcher.matches(std::string("x01y")));
  EXPECT_FALSE(Matcher.matches(std::string("xyz")));
  EXPECT_TRUE(Matcher.matches(std::string("0")));
  EXPECT_TRUE(Matcher.matches(std::string("10")));
}

TEST_F(CachedMatcherTest, StatesAreSharedAcrossCalls) {
  CachedMatcher Matcher(E, re("(a|b)*abb"));
  (void)Matcher.matches(std::string("abb"));
  size_t AfterFirst = Matcher.statesMaterialized();
  // Matching more strings over the same prefix structure reuses states.
  (void)Matcher.matches(std::string("aabb"));
  (void)Matcher.matches(std::string("babb"));
  (void)Matcher.matches(std::string("ababab"));
  size_t AfterMore = Matcher.statesMaterialized();
  // (a|b)*abb has exactly 4 Brzozowski classes over {a,b} plus possibly the
  // initial; the table must stay tiny, not grow per input.
  EXPECT_LE(AfterMore, AfterFirst + 4);
}

TEST_F(CachedMatcherTest, LazinessOnHugeRegex) {
  // Matching a short input against a regex with a large reachable space
  // must not materialize that space.
  CachedMatcher Matcher(E, re("(.*a.{40})&(.*b.{40})"));
  EXPECT_FALSE(Matcher.matches(std::string("ab")));
  EXPECT_LE(Matcher.statesMaterialized(), 8u);
}

TEST_F(CachedMatcherTest, UnicodeRanges) {
  CachedMatcher Matcher(E, re("[\\u4E00-\\u9FFF]+x?"));
  EXPECT_TRUE(Matcher.matches(std::string("\xE4\xB8\xAD")));
  EXPECT_TRUE(Matcher.matches(std::string("\xE4\xB8\xADx")));
  EXPECT_FALSE(Matcher.matches(std::string("x")));
}

class CachedMatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(3)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  default:
    return randomRegex(M, R, 0);
  }
}

TEST_P(CachedMatcherPropertyTest, AgreesWithUncachedMatcher) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());
  static const uint32_t Alphabet[] = {'a', 'b', 'c', '5', 'z'};
  for (int I = 0; I != 6; ++I) {
    Re R = randomRegex(M, Rand, 4);
    CachedMatcher Matcher(E, R);
    for (int W = 0; W != 25; ++W) {
      std::vector<uint32_t> Word;
      size_t Len = Rand.below(6);
      for (size_t J = 0; J != Len; ++J)
        Word.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(Matcher.matches(Word), E.matches(R, Word))
          << "cached matcher disagrees on " << M.toString(R);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedMatcherPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
