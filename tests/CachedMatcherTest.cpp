//===- tests/CachedMatcherTest.cpp - SRM-style matcher tests -----------------===//

#include "core/CachedMatcher.h"

#include "re/RegexParser.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class CachedMatcherTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(CachedMatcherTest, BasicAcceptance) {
  CachedMatcher Matcher(E, re("a*b"));
  EXPECT_TRUE(Matcher.matches(std::string("b")));
  EXPECT_TRUE(Matcher.matches(std::string("aaab")));
  EXPECT_FALSE(Matcher.matches(std::string("a")));
  EXPECT_FALSE(Matcher.matches(std::string("ba")));
  EXPECT_FALSE(Matcher.matches(std::string("")));
}

TEST_F(CachedMatcherTest, ExtendedOperators) {
  CachedMatcher Matcher(E, re("(.*\\d.*)&~(.*01.*)"));
  EXPECT_TRUE(Matcher.matches(std::string("x7y")));
  EXPECT_FALSE(Matcher.matches(std::string("x01y")));
  EXPECT_FALSE(Matcher.matches(std::string("xyz")));
  EXPECT_TRUE(Matcher.matches(std::string("0")));
  EXPECT_TRUE(Matcher.matches(std::string("10")));
}

TEST_F(CachedMatcherTest, StatesAreSharedAcrossCalls) {
  CachedMatcher Matcher(E, re("(a|b)*abb"));
  (void)Matcher.matches(std::string("abb"));
  size_t AfterFirst = Matcher.statesMaterialized();
  // Matching more strings over the same prefix structure reuses states.
  (void)Matcher.matches(std::string("aabb"));
  (void)Matcher.matches(std::string("babb"));
  (void)Matcher.matches(std::string("ababab"));
  size_t AfterMore = Matcher.statesMaterialized();
  // (a|b)*abb has exactly 4 Brzozowski classes over {a,b} plus possibly the
  // initial; the table must stay tiny, not grow per input.
  EXPECT_LE(AfterMore, AfterFirst + 4);
}

TEST_F(CachedMatcherTest, LazinessOnHugeRegex) {
  // Matching a short input against a regex with a large reachable space
  // must not materialize that space.
  CachedMatcher Matcher(E, re("(.*a.{40})&(.*b.{40})"));
  EXPECT_FALSE(Matcher.matches(std::string("ab")));
  EXPECT_LE(Matcher.statesMaterialized(), 8u);
}

TEST_F(CachedMatcherTest, UnicodeRanges) {
  CachedMatcher Matcher(E, re("[\\u4E00-\\u9FFF]+x?"));
  EXPECT_TRUE(Matcher.matches(std::string("\xE4\xB8\xAD")));
  EXPECT_TRUE(Matcher.matches(std::string("\xE4\xB8\xADx")));
  EXPECT_FALSE(Matcher.matches(std::string("x")));
}

TEST_F(CachedMatcherTest, BoundedCacheEvictsUnderPressure) {
  // .*a.{10} has ~2^10 reachable derivative states (which of the last 10
  // positions saw an 'a'); a cap of 64 forces the cache to evict while the
  // verdicts must stay identical to the uncached engine.
  Re R = re(".*a.{10}");
  CachedMatcher::Options Opts;
  Opts.MaxStates = 64;
  CachedMatcher Matcher(E, R, Opts);

  Rng Rand(7);
  for (int W = 0; W != 200; ++W) {
    std::vector<uint32_t> Word;
    size_t Len = Rand.below(40);
    for (size_t J = 0; J != Len; ++J)
      Word.push_back(Rand.below(4) ? 'b' : 'a');
    EXPECT_EQ(Matcher.matches(Word), E.matches(R, Word));
    EXPECT_LE(Matcher.statesMaterialized(), Opts.MaxStates)
        << "cache exceeded its cap";
  }
  EXPECT_GT(Matcher.evictions(), 0u) << "adversarial blowup never evicted";
  EXPECT_EQ(Matcher.auditRows(), 0u) << "post-eviction rows inconsistent";
}

TEST_F(CachedMatcherTest, TinyCapFallsBackAndStaysCorrect) {
  // A cap of 1 cannot hold any row's fan-out targets: after pinning the
  // expanding state there is no room, so matching degrades to the uncached
  // derivative path — and must still be exact.
  Re R = re("(a|b)*abb");
  CachedMatcher::Options Opts;
  Opts.MaxStates = 1;
  CachedMatcher Matcher(E, R, Opts);
  EXPECT_TRUE(Matcher.matches(std::string("abb")));
  EXPECT_TRUE(Matcher.matches(std::string("ababb")));
  EXPECT_FALSE(Matcher.matches(std::string("ab")));
  EXPECT_GT(Matcher.fallbackSteps(), 0u);
  EXPECT_LE(Matcher.statesMaterialized(), 1u);
}

TEST_F(CachedMatcherTest, AuditDetectsCorruptedRow) {
  CachedMatcher Matcher(E, re("(a|b)*abb"));
  (void)Matcher.matches(std::string("ababb"));
  ASSERT_EQ(Matcher.auditRows(), 0u) << "healthy cache must audit clean";
  // Redirect the initial state's 'a' transition to the dead sink; the row
  // re-derivation must flag exactly the corrupted entries.
  Matcher.corruptRowForTest(0, Matcher.compressor().classOf('a'), 0xFFFFFFFFu);
  EXPECT_GT(Matcher.auditRows(), 0u) << "corruption not detected";
}

class CachedMatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(3)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  default:
    return randomRegex(M, R, 0);
  }
}

TEST_P(CachedMatcherPropertyTest, AgreesWithUncachedMatcher) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());
  static const uint32_t Alphabet[] = {'a', 'b', 'c', '5', 'z'};
  for (int I = 0; I != 6; ++I) {
    Re R = randomRegex(M, Rand, 4);
    CachedMatcher Matcher(E, R);
    for (int W = 0; W != 25; ++W) {
      std::vector<uint32_t> Word;
      size_t Len = Rand.below(6);
      for (size_t J = 0; J != Len; ++J)
        Word.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(Matcher.matches(Word), E.matches(R, Word))
          << "cached matcher disagrees on " << M.toString(R);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedMatcherPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
