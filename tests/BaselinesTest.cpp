//===- tests/BaselinesTest.cpp - Classical baseline solver tests -------------===//

#include "baselines/AntimirovSolver.h"
#include "baselines/BrzozowskiMintermSolver.h"

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class BaselinesTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Reference{E};
  BrzozowskiMintermSolver Brz{E};
  AntimirovSolver Anti{M};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(BaselinesTest, LinearFormBasics) {
  std::vector<LinearArc> Arcs;
  ASSERT_TRUE(linearForm(M, re("ab"), Arcs));
  ASSERT_EQ(Arcs.size(), 1u);
  EXPECT_EQ(Arcs[0].Guard, CharSet::singleton('a'));
  EXPECT_EQ(Arcs[0].Target, re("b"));

  Arcs.clear();
  ASSERT_TRUE(linearForm(M, re("a*b"), Arcs));
  EXPECT_EQ(Arcs.size(), 2u); // a → a*b, b → ε

  Arcs.clear();
  ASSERT_TRUE(linearForm(M, re("(a|b)c"), Arcs));
  // The union of predicates merges to one class: [ab] → c.
  ASSERT_EQ(Arcs.size(), 1u);
  EXPECT_EQ(Arcs[0].Target, re("c"));

  Arcs.clear();
  EXPECT_FALSE(linearForm(M, re("~(ab)"), Arcs));
}

TEST_F(BaselinesTest, LinearFormIntersectionProduct) {
  std::vector<LinearArc> Arcs;
  ASSERT_TRUE(linearForm(M, re("(.*a.*)&(.*b.*)"), Arcs));
  // Pairwise products with satisfiable guards and nonempty targets only.
  for (const LinearArc &Arc : Arcs) {
    EXPECT_FALSE(Arc.Guard.isEmpty());
    EXPECT_NE(Arc.Target, M.empty());
  }
}

TEST_F(BaselinesTest, PartialDerivativeNfaAcceptance) {
  Rng Rand(23);
  const char *Patterns[] = {"(a|b)*abb", "a(b|c)*d?", "a{2,4}b{0,2}",
                            "\\d+[a-f]*", "(ab)*|(ba)*",
                            "(.*a.*)&(.*b.*)"};
  static const uint32_t Alphabet[] = {'a', 'b', 'c', 'd', '5', 'f'};
  TrManager T2(M);
  DerivativeEngine E2(M, T2);
  for (const char *P : Patterns) {
    Re R = re(P);
    auto A = buildPartialDerivativeNfa(M, R);
    ASSERT_TRUE(A.has_value()) << P;
    for (int I = 0; I != 60; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(7);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      EXPECT_EQ(A->accepts(W), E2.matches(R, W)) << P;
    }
  }
}

TEST_F(BaselinesTest, PartialDerivativeNfaIsCompact) {
  // Antimirov: for plain RE, at most ♯(R)+1 partial derivatives.
  const char *Patterns[] = {"(a|b)*abb", "a(b|c)*d?", "abcdef",
                            "(ab|cd)*(e|f)"};
  for (const char *P : Patterns) {
    Re R = re(P);
    auto Pd = buildPartialDerivativeNfa(M, R);
    ASSERT_TRUE(Pd.has_value());
    EXPECT_LE(Pd->numStates(), size_t(M.node(R).NumPreds) + 1) << P;
  }
}

TEST_F(BaselinesTest, PartialDerivativeNfaRejectsComplement) {
  EXPECT_FALSE(buildPartialDerivativeNfa(M, re("~(ab)")).has_value());
  auto Budget = buildPartialDerivativeNfa(M, re("(a|b){0,40}c"), 3);
  EXPECT_FALSE(Budget.has_value()); // state budget
}

TEST_F(BaselinesTest, AntimirovAgreesOnPositiveFragment) {
  const char *Patterns[] = {
      "abc", "a+&b+", "(ab)+&(ba)+", "(.*a.*)&(.*b.*)", "a{2,4}&a{5,6}",
      "(aa)+&a(aa)*",  "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "(.*a.{3})&(.*b.{3})",
  };
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult Ref = Reference.checkSat(R);
    SolveResult Got = Anti.solve(R);
    ASSERT_NE(Got.Status, SolveStatus::Unknown) << P;
    EXPECT_EQ(Got.Status, Ref.Status) << P;
    if (Got.isSat()) {
      EXPECT_TRUE(E.matches(R, Got.Witness)) << P;
    }
  }
}

TEST_F(BaselinesTest, AntimirovRejectsComplement) {
  EXPECT_EQ(Anti.solve(re("~(ab)")).Status, SolveStatus::Unsupported);
  EXPECT_EQ(Anti.solve(re("a&~(b)")).Status, SolveStatus::Unsupported);
  // ...even when the complement is buried.
  EXPECT_EQ(Anti.solve(re("x(y|~(z))*")).Status, SolveStatus::Unsupported);
}

TEST_F(BaselinesTest, BrzozowskiMintermHandlesFullEre) {
  const char *Patterns[] = {
      "abc",      "a+&b+",      "~(ab)",       "~(.*)",
      "(.*\\d.*)&~(.*01.*)",    "(ab)+&(ba)+", "~(a*)&a{0,3}",
  };
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult Ref = Reference.checkSat(R);
    SolveResult Got = Brz.solve(R);
    ASSERT_NE(Got.Status, SolveStatus::Unknown) << P;
    EXPECT_EQ(Got.Status, Ref.Status) << P;
    if (Got.isSat()) {
      EXPECT_TRUE(E.matches(R, Got.Witness)) << P;
    }
  }
}

TEST_F(BaselinesTest, BudgetsReportUnknown) {
  SolveOptions Opts;
  Opts.MaxStates = 3;
  EXPECT_EQ(Brz.solve(re("a{50}"), Opts).Status, SolveStatus::Unknown);
  EXPECT_EQ(Anti.solve(re("a{50}"), Opts).Status, SolveStatus::Unknown);
}

/// Cross-solver agreement on random positive regex pairs — four independent
/// implementations must agree on sat/unsat.
class CrossSolverTest : public ::testing::TestWithParam<uint64_t> {};

Re randomPositive(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(2)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(6)) {
  case 0:
  case 1:
    return M.concat(randomPositive(M, R, Depth - 1),
                    randomPositive(M, R, Depth - 1));
  case 2:
    return M.union_(randomPositive(M, R, Depth - 1),
                    randomPositive(M, R, Depth - 1));
  case 3:
    return M.star(randomPositive(M, R, Depth - 1));
  case 4: {
    uint32_t Min = static_cast<uint32_t>(R.below(3));
    return M.loop(randomPositive(M, R, Depth - 1), Min,
                  Min + 1 + static_cast<uint32_t>(R.below(2)));
  }
  default:
    return randomPositive(M, R, 0);
  }
}

TEST_P(CrossSolverTest, FourSolversAgreeOnIntersections) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver Reference(E);
  BrzozowskiMintermSolver Brz(E);
  AntimirovSolver Anti(M);

  Rng Rand(GetParam());
  for (int I = 0; I != 6; ++I) {
    Re A = randomPositive(M, Rand, 3);
    Re B = randomPositive(M, Rand, 3);
    Re R = M.inter(A, B);
    SolveOptions Opts;
    Opts.MaxStates = 50000;
    SolveResult Ref = Reference.checkSat(R, Opts);
    if (Ref.Status == SolveStatus::Unknown)
      continue;
    SolveResult GotB = Brz.solve(R, Opts);
    SolveResult GotA = Anti.solve(R, Opts);
    if (GotB.Status != SolveStatus::Unknown) {
      EXPECT_EQ(GotB.Status, Ref.Status) << M.toString(R);
    }
    if (GotA.Status != SolveStatus::Unknown) {
      EXPECT_EQ(GotA.Status, Ref.Status) << M.toString(R);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSolverTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
