//===- tests/DistSolverTest.cpp - Coordinator/worker scheduling tests -------===//
///
/// \file
/// End-to-end tests for the `src/dist` multi-process layer (DESIGN.md
/// §16): verdict-stream determinism across worker counts (and against the
/// in-process BatchSolver), steal correctness under a deliberately skewed
/// shard hash, worker-crash requeue-once recovery, and respawn after
/// total worker loss. These fork real worker processes over socketpairs —
/// the same machinery sbd-dist and the CI consistency gate run.
///
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Protocol.h"
#include "portfolio/BatchSolver.h"

#include "gtest/gtest.h"

using namespace sbd;
using namespace sbd::dist;

namespace {

std::vector<BatchQuery> mixedCorpus() {
  std::vector<std::string> Patterns = {
      "a",
      "ab|cd",
      "(a|b)*c",
      "[a-f]{2,4}",
      "(ab)*&~(abab)",
      "~(a*)&b*",
      "x[0-9]+y",
      "(foo|bar|baz)qux",
      "a*b*c*d*",
      "([a-z]&[^m-p])*",
      "((a|b)(c|d)){3}",
      "not(a valid pattern", // parse error rides along deliberately
      "p(q|r)*s",
      "zz*&z{2,}",
      "[0-9]{3}-[0-9]{4}",
      "(a&b)|(c&d)",
  };
  std::vector<BatchQuery> Out;
  for (const std::string &P : Patterns) {
    BatchQuery Q;
    Q.Pattern = P;
    Q.Opts.MaxStates = 4096;
    Out.push_back(std::move(Q));
  }
  return Out;
}

std::string streamOf(const std::vector<BatchResult> &Results) {
  std::string Out;
  for (size_t I = 0; I != Results.size(); ++I) {
    Out += renderVerdictLine(I, Results[I]);
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Determinism across worker counts
//===----------------------------------------------------------------------===//

TEST(DistSolverTest, VerdictStreamIndependentOfWorkerCount) {
  std::vector<BatchQuery> Queries = mixedCorpus();

  DistOptions One;
  One.NumWorkers = 1;
  DistSolver S1(One);
  std::string Stream1 = streamOf(S1.solveAll(Queries));

  DistOptions Four;
  Four.NumWorkers = 4;
  Four.NumShards = 8; // shards ≠ workers must not matter either
  DistSolver S4(Four);
  std::string Stream4 = streamOf(S4.solveAll(Queries));

  EXPECT_EQ(Stream1, Stream4);
  EXPECT_EQ(S1.stats().Lost, 0u);
  EXPECT_EQ(S4.stats().Lost, 0u);
  EXPECT_EQ(S4.stats().Dispatched, Queries.size());
}

TEST(DistSolverTest, MatchesInProcessBatchSolver) {
  // The dist layer must be a transparent transport: its verdict stream is
  // byte-identical to the single-threaded in-process BatchSolver's.
  std::vector<BatchQuery> Queries = mixedCorpus();

  BatchOptions BOpts;
  BOpts.NumThreads = 1;
  BatchSolver Local(BOpts);
  std::string LocalStream = streamOf(Local.solveAll(Queries));

  DistOptions DOpts;
  DOpts.NumWorkers = 3;
  DistSolver Dist(DOpts);
  std::string DistStream = streamOf(Dist.solveAll(Queries));

  EXPECT_EQ(LocalStream, DistStream);
}

TEST(DistSolverTest, ShardRoutingIsDeterministic) {
  // Equal queries hash to equal shards: two runs over a shuffled-free
  // corpus dispatch identically (same steal-free distribution), which is
  // observable as a repeatable stats profile with stealing disabled by
  // saturation (every worker busy enough not to run dry is not
  // guaranteed, so compare verdict streams — the invariant that matters).
  std::vector<BatchQuery> Queries = mixedCorpus();
  DistOptions Opts;
  Opts.NumWorkers = 2;
  DistSolver A(Opts);
  DistSolver B(Opts);
  EXPECT_EQ(streamOf(A.solveAll(Queries)), streamOf(B.solveAll(Queries)));
}

//===----------------------------------------------------------------------===//
// Work stealing
//===----------------------------------------------------------------------===//

TEST(DistSolverTest, IdleWorkersStealFromSkewedShards) {
  // Every query is textually identical → one canonical key → one shard →
  // one home worker. With 3 workers the other two can only make progress
  // by stealing.
  std::vector<BatchQuery> Queries;
  for (int I = 0; I != 24; ++I) {
    BatchQuery Q;
    Q.Pattern = "(a|b)*abb";
    Q.Opts.MaxStates = 4096;
    Queries.push_back(std::move(Q));
  }
  DistOptions Opts;
  Opts.NumWorkers = 3;
  Opts.MaxInFlightPerWorker = 2;
  DistSolver S(Opts);
  std::vector<BatchResult> Results = S.solveAll(Queries);

  EXPECT_GT(S.stats().Steals, 0u);
  EXPECT_EQ(S.stats().Lost, 0u);
  ASSERT_EQ(Results.size(), Queries.size());
  // Every stolen solve must still produce the canonical verdict.
  std::string First = renderVerdictLine(0, Results[0]);
  for (size_t I = 1; I != Results.size(); ++I) {
    std::string Line = renderVerdictLine(I, Results[I]);
    EXPECT_EQ(Line.substr(Line.find(' ')), First.substr(First.find(' ')));
  }
}

//===----------------------------------------------------------------------===//
// Crash recovery
//===----------------------------------------------------------------------===//

TEST(DistSolverTest, WorkerCrashRequeuesInFlightOnce) {
  std::vector<BatchQuery> Queries = mixedCorpus();

  DistOptions Clean;
  Clean.NumWorkers = 2;
  DistSolver Ref(Clean);
  std::string Want = streamOf(Ref.solveAll(Queries));

  DistOptions Crashy = Clean;
  Crashy.CrashWorkerIndex = 0;
  Crashy.CrashAtRequest = 2; // die mid-stream with work queued + in flight
  DistSolver S(Crashy);
  std::string Got = streamOf(S.solveAll(Queries));

  EXPECT_EQ(S.stats().WorkerCrashes, 1u);
  EXPECT_GE(S.stats().Requeues, 1u);
  EXPECT_EQ(S.stats().Lost, 0u) << "requeue must recover every verdict";
  EXPECT_EQ(Want, Got) << "crash recovery must not change the stream";
}

TEST(DistSolverTest, TotalWorkerLossRespawns) {
  std::vector<BatchQuery> Queries = mixedCorpus();

  DistOptions Opts;
  Opts.NumWorkers = 1; // the only worker dies → coordinator must respawn
  Opts.CrashWorkerIndex = 0;
  Opts.CrashAtRequest = 3;
  DistSolver S(Opts);
  std::string Got = streamOf(S.solveAll(Queries));

  DistOptions Clean;
  Clean.NumWorkers = 1;
  DistSolver Ref(Clean);
  EXPECT_EQ(streamOf(Ref.solveAll(Queries)), Got);
  EXPECT_EQ(S.stats().WorkerCrashes, 1u);
  EXPECT_EQ(S.stats().Respawns, 1u);
  EXPECT_EQ(S.stats().Lost, 0u);
}

//===----------------------------------------------------------------------===//
// Streaming submission
//===----------------------------------------------------------------------===//

TEST(DistSolverTest, StreamingSubmitMatchesSolveAll) {
  std::vector<BatchQuery> Queries = mixedCorpus();

  DistOptions Opts;
  Opts.NumWorkers = 2;
  Opts.MaxInFlightPerWorker = 1; // tight admission: submit must backpressure
  DistSolver Batch(Opts);
  std::string Want = streamOf(Batch.solveAll(Queries));

  DistSolver Stream(Opts);
  for (size_t I = 0; I != Queries.size(); ++I)
    EXPECT_EQ(Stream.submit(Queries[I]), I);
  EXPECT_EQ(streamOf(Stream.drain()), Want);
}

} // namespace
