//===- tests/DerivativesTest.cpp - δ / Brzozowski / matcher tests -----------===//

#include "core/Derivatives.h"

#include "re/RegexParser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class DerivTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &S) { return parseRegexOrDie(M, S); }
};

TEST_F(DerivTest, LeafRules) {
  EXPECT_EQ(E.derivative(M.empty()), T.bot());
  EXPECT_EQ(E.derivative(M.epsilon()), T.bot());
  // δ(φ) = if(φ, ε, ⊥).
  Tr D = E.derivative(M.pred(CharSet::digit()));
  EXPECT_EQ(D, T.ite(CharSet::digit(), T.leaf(M.epsilon()), T.bot()));
  // δ(.) simplifies to the constant ε (the if-condition is ⊤).
  EXPECT_EQ(E.derivative(M.anyChar()), T.leaf(M.epsilon()));
}

TEST_F(DerivTest, PaperExample45) {
  // Example 4.5: δ(.*01.*) = .*01.* | if(0, 1.*, ⊥) and δ(1.*) = if(1,.*,⊥).
  Re R = re(".*01.*");
  Tr D = E.derivative(R);
  Tr Expected =
      T.union2(T.leaf(R), T.ite(CharSet::singleton('0'), T.leaf(re("1.*")),
                                T.bot()));
  EXPECT_EQ(D, Expected);

  Tr D1 = E.derivative(re("1.*"));
  EXPECT_EQ(D1, T.ite(CharSet::singleton('1'), T.leaf(M.top()), T.bot()));
}

TEST_F(DerivTest, PaperExample51ComplementDnf) {
  // Example 5.1: δdnf(~(.*01.*)) = if(φ0, r & ~(1.*), r) with r = ~(.*01.*).
  Re R01 = re(".*01.*");
  Re R = M.complement(R01);
  Tr Dnf = E.derivativeDnf(R);
  Re R3 = M.inter(R, M.complement(re("1.*")));
  Tr Expected = T.ite(CharSet::singleton('0'), T.leaf(R3), T.leaf(R));
  EXPECT_EQ(Dnf, Expected);

  // ... and δdnf(r & ~(1.*)) ≡ if(φ0, r & ~(1.*), if(φ1, ⊥, r)). The exact
  // conditional nesting order depends on interning order, so check the
  // semantics: Fig. 2d's three-way behaviour.
  Tr Dnf3 = E.derivativeDnf(R3);
  EXPECT_TRUE(T.isDnf(Dnf3));
  EXPECT_EQ(T.apply(Dnf3, '0'), R3);
  EXPECT_EQ(T.apply(Dnf3, '1'), M.empty());
  EXPECT_EQ(T.apply(Dnf3, 'x'), R);
  std::vector<TrArc> Arcs3 = T.arcs(Dnf3);
  ASSERT_EQ(Arcs3.size(), 2u); // the '1' branch goes to ⊥ and is dropped
  for (const TrArc &A : Arcs3) {
    if (A.Target == R3) {
      EXPECT_EQ(A.Guard, CharSet::singleton('0'));
    }
    else {
      EXPECT_EQ(A.Target, R);
      EXPECT_EQ(A.Guard, CharSet::fromRanges({{'0', '1'}}).complement());
    }
  }
}

TEST_F(DerivTest, RunningExampleSection2) {
  // δ(R) for R = (.*\d.*) & ~(.*01.*) is, in DNF,
  // if(φ0, ..., if(φd, ..., ...)) — its arcs must be the three-way split of
  // the Section 2 derivation: on '0': R2&~(1.*) (digit branch subsumed),
  // on other digits: R2' = .*\d.* already satisfied → ~(.*01.*), else R.
  Re R1 = re(".*\\d.*");
  Re R2 = M.complement(re(".*01.*"));
  Re R = M.inter(R1, R2);
  Tr Dnf = E.derivativeDnf(R);
  EXPECT_TRUE(T.isDnf(Dnf));
  // The guard space splits into {0}, digits∖{0} and the rest; union
  // branches may contribute a subsumed extra arc (the paper's 3-way form
  // uses ≡-simplifications beyond the derivation itself).
  std::vector<TrArc> Arcs = T.arcs(Dnf);
  EXPECT_GE(Arcs.size(), 3u);
  EXPECT_LE(Arcs.size(), 4u);

  Re OnZero = T.apply(Dnf, '0');
  EXPECT_EQ(OnZero, M.inter(R2, M.complement(re("1.*"))));
  Re OnDigit = T.apply(Dnf, '7');
  EXPECT_EQ(OnDigit, R2);
  Re OnOther = T.apply(Dnf, 'x');
  EXPECT_EQ(OnOther, R);
}

TEST_F(DerivTest, BrzozowskiBasics) {
  Re Ab = re("ab");
  EXPECT_EQ(E.brzozowski(Ab, 'a'), re("b"));
  EXPECT_EQ(E.brzozowski(Ab, 'b'), M.empty());
  EXPECT_EQ(E.brzozowski(re("a*"), 'a'), re("a*"));
  EXPECT_EQ(E.brzozowski(re("a|b"), 'b'), M.epsilon());
  // δ+ example from Section 7: δ(ab) reached states {b, ε}.
  EXPECT_EQ(E.brzozowski(re("b(ab)*"), 'b'), re("(ab)*"));
}

TEST_F(DerivTest, BrzozowskiThroughComplementAndLoop) {
  Re R = re("~(ab)");
  // D_a(~(ab)) = ~(b); D_x(~(ab)) = ~⊥ = .*.
  EXPECT_EQ(E.brzozowski(R, 'a'), M.complement(re("b")));
  EXPECT_EQ(E.brzozowski(R, 'x'), M.top());

  Re L = re("a{3}");
  EXPECT_EQ(E.brzozowski(L, 'a'), re("a{2}"));
  EXPECT_EQ(E.brzozowski(re("a{2}"), 'a'), re("a"));
  EXPECT_EQ(E.brzozowski(re("a{1,3}"), 'a'), re("a{0,2}"));
  EXPECT_EQ(E.brzozowski(re("a{2,}"), 'a'), re("a{1,}"));
}

TEST_F(DerivTest, MatcherGroundTruth) {
  EXPECT_TRUE(E.matches(re("abc"), "abc"));
  EXPECT_FALSE(E.matches(re("abc"), "ab"));
  EXPECT_FALSE(E.matches(re("abc"), "abcd"));
  EXPECT_TRUE(E.matches(re("a*b"), "aaab"));
  EXPECT_TRUE(E.matches(re("a*b"), "b"));
  EXPECT_TRUE(E.matches(re(".*\\d.*"), "xx7yy"));
  EXPECT_FALSE(E.matches(re(".*\\d.*"), "xxyy"));
  // Extended operators.
  EXPECT_TRUE(E.matches(re("(.*a.*)&(.*b.*)"), "xbya"));
  EXPECT_FALSE(E.matches(re("(.*a.*)&(.*b.*)"), "xya"));
  EXPECT_TRUE(E.matches(re("~(.*01.*)"), "0a1"));
  EXPECT_FALSE(E.matches(re("~(.*01.*)"), "x01y"));
  // The password constraint of Section 2.
  Re Pw = M.inter(re(".*\\d.*"), re("~(.*01.*)"));
  EXPECT_TRUE(E.matches(Pw, "pass9word"));
  EXPECT_FALSE(E.matches(Pw, "password"));  // no digit
  EXPECT_FALSE(E.matches(Pw, "pass01word")); // contains 01
  EXPECT_TRUE(E.matches(Pw, "0"));
}

TEST_F(DerivTest, MatcherLoops) {
  Re Date = re("\\d{4}-[a-zA-Z]{3}-\\d{2}");
  EXPECT_TRUE(E.matches(Date, "2020-Nov-25"));
  EXPECT_FALSE(E.matches(Date, "20-Nov-25"));
  EXPECT_FALSE(E.matches(Date, "2020-N0v-25"));
  EXPECT_FALSE(E.matches(Date, "2020-Nov-256"));
  EXPECT_TRUE(E.matches(re("a{2,4}"), "aa"));
  EXPECT_TRUE(E.matches(re("a{2,4}"), "aaaa"));
  EXPECT_FALSE(E.matches(re("a{2,4}"), "a"));
  EXPECT_FALSE(E.matches(re("a{2,4}"), "aaaaa"));
}

TEST_F(DerivTest, UnicodeMatching) {
  Re R = re("[\\u4E00-\\u9FFF]+");
  EXPECT_TRUE(E.matches(R, std::string("\xE4\xB8\xAD\xE6\x96\x87")));
  EXPECT_FALSE(E.matches(R, "abc"));
  Re Astral = re("\\U{1F600}*");
  EXPECT_TRUE(E.matches(Astral, std::string("\xF0\x9F\x98\x80")));
}

/// --- Theorem 4.3 property: L(δ(R)(a)) = L(D_a(R)) ------------------------

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(8)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(3)));
    case 1:
      return M.chr(static_cast<uint32_t>('0' + R.below(2)));
    case 2:
      return M.pred(CharSet::digit());
    case 3:
      return M.epsilon();
    case 4:
      // Random multi-range class overlapping the word alphabet.
      return M.pred(CharSet::fromRanges(
          {{static_cast<uint32_t>('a' + R.below(3)),
            static_cast<uint32_t>('c' + R.below(20))},
           {'0', static_cast<uint32_t>('0' + R.below(8))}}));
    case 5:
      // Complemented class (huge set; exercises wide guards).
      return M.pred(CharSet::range('a', static_cast<uint32_t>(
                                            'a' + R.below(26)))
                        .complement());
    case 6:
      // Class with an astral-plane component.
      return M.pred(CharSet::fromRanges({{'z', 'z'}, {0x1F600, 0x1F64F}}));
    default:
      return M.anyChar();
    }
  }
  switch (R.below(8)) {
  case 0:
  case 1:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 4:
    return M.star(randomRegex(M, R, Depth - 1));
  case 5:
    return M.complement(randomRegex(M, R, Depth - 1));
  case 6: {
    uint32_t Min = static_cast<uint32_t>(R.below(3));
    uint32_t Max = Min + 1 + static_cast<uint32_t>(R.below(2));
    return M.loop(randomRegex(M, R, Depth - 1), Min, Max);
  }
  default:
    return randomRegex(M, R, 0);
  }
}

std::vector<uint32_t> randomWord(Rng &R, size_t MaxLen) {
  static const uint32_t Alphabet[] = {'a', 'b', 'c', '0', '1', '5', 'z'};
  size_t Len = R.below(MaxLen + 1);
  std::vector<uint32_t> W(Len);
  for (uint32_t &C : W)
    C = Alphabet[R.below(std::size(Alphabet))];
  return W;
}

class Theorem43Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem43Test, SymbolicMatchesClassicalBySampling) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());

  for (int I = 0; I != 8; ++I) {
    Re R = randomRegex(M, Rand, 4);
    for (uint32_t Ch : {uint32_t('a'), uint32_t('b'), uint32_t('0'),
                        uint32_t('1'), uint32_t('7'), uint32_t('Q')}) {
      Re Sym = T.apply(E.derivative(R), Ch);
      Re SymDnf = T.apply(E.derivativeDnf(R), Ch);
      Re Classic = E.brzozowski(R, Ch);
      // Language equality by membership sampling (node equality need not
      // hold: distributivity is not an interning law).
      for (int W = 0; W != 12; ++W) {
        std::vector<uint32_t> Word = randomWord(Rand, 5);
        bool InClassic = E.matches(Classic, Word);
        EXPECT_EQ(E.matches(Sym, Word), InClassic)
            << "δ disagrees with Brzozowski on " << M.toString(R);
        EXPECT_EQ(E.matches(SymDnf, Word), InClassic)
            << "δdnf disagrees with Brzozowski on " << M.toString(R);
      }
      // Nullability (the ϵ case) must agree exactly.
      EXPECT_EQ(M.nullable(Sym), M.nullable(Classic));
      EXPECT_EQ(M.nullable(SymDnf), M.nullable(Classic));
    }
  }
}

TEST_P(Theorem43Test, MatcherAgreesWithDerivativeChain) {
  // Matching w = a1…an is nullable(D_an(…D_a1(R))) but also reachable by
  // applying δ step by step; both must agree.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Rng Rand(GetParam());

  for (int I = 0; I != 8; ++I) {
    Re R = randomRegex(M, Rand, 4);
    for (int W = 0; W != 10; ++W) {
      std::vector<uint32_t> Word = randomWord(Rand, 6);
      Re ViaSymbolic = R;
      for (uint32_t Ch : Word)
        ViaSymbolic = T.apply(E.derivativeDnf(ViaSymbolic), Ch);
      EXPECT_EQ(M.nullable(ViaSymbolic), E.matches(R, Word))
          << "stepping δdnf disagrees with the matcher on " << M.toString(R);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem43Test,
                         ::testing::Range<uint64_t>(1, 31));

} // namespace
