//===- tests/RegexTest.cpp - Regex algebra unit + property tests -----------===//

#include "re/Regex.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sbd;

namespace {

class RegexTest : public ::testing::Test {
protected:
  RegexManager M;
};

TEST_F(RegexTest, DistinguishedTerms) {
  EXPECT_NE(M.empty(), M.epsilon());
  EXPECT_NE(M.empty(), M.top());
  EXPECT_FALSE(M.nullable(M.empty()));
  EXPECT_TRUE(M.nullable(M.epsilon()));
  EXPECT_TRUE(M.nullable(M.top()));
  EXPECT_FALSE(M.nullable(M.anyChar()));
}

TEST_F(RegexTest, HashConsingIdentity) {
  Re A = M.chr('a');
  Re B = M.chr('b');
  EXPECT_EQ(M.concat(A, B), M.concat(A, B));
  EXPECT_EQ(M.union_(A, B), M.union_(B, A)); // commutativity
  EXPECT_EQ(M.union_(A, A), A);              // idempotence
  EXPECT_EQ(M.union_(M.union_(A, B), M.chr('c')),
            M.union_(A, M.union_(B, M.chr('c')))); // associativity
  EXPECT_EQ(M.inter(A, B), M.inter(B, A));
}

TEST_F(RegexTest, ConcatUnitsAndAbsorption) {
  Re A = M.chr('a');
  EXPECT_EQ(M.concat(A, M.epsilon()), A);
  EXPECT_EQ(M.concat(M.epsilon(), A), A);
  EXPECT_EQ(M.concat(A, M.empty()), M.empty());
  EXPECT_EQ(M.concat(M.empty(), A), M.empty());
}

TEST_F(RegexTest, ConcatRightAssociated) {
  Re A = M.chr('a'), B = M.chr('b'), C = M.chr('c');
  Re Left = M.concat(M.concat(A, B), C);
  Re Right = M.concat(A, M.concat(B, C));
  EXPECT_EQ(Left, Right);
  EXPECT_TRUE(M.isNormalized(Left));
  // The left child of every concat node is not itself a concat.
  EXPECT_NE(M.kind(M.node(Left).Kids[0]), RegexKind::Concat);
}

TEST_F(RegexTest, UnionAbsorbersAndUnits) {
  Re A = M.chr('a');
  EXPECT_EQ(M.union_(A, M.empty()), A);         // ⊥ unit
  EXPECT_EQ(M.union_(A, M.top()), M.top());     // .* absorbs
  EXPECT_EQ(M.inter(A, M.top()), A);            // .* unit
  EXPECT_EQ(M.inter(A, M.empty()), M.empty());  // ⊥ absorbs
}

TEST_F(RegexTest, ComplementLaws) {
  Re A = M.chr('a');
  EXPECT_EQ(M.complement(M.complement(A)), A);
  EXPECT_EQ(M.complement(M.empty()), M.top());
  EXPECT_EQ(M.complement(M.top()), M.empty());
  // R | ~R = .*; R & ~R = ⊥.
  EXPECT_EQ(M.union_(A, M.complement(A)), M.top());
  EXPECT_EQ(M.inter(A, M.complement(A)), M.empty());
}

TEST_F(RegexTest, PredicateMerging) {
  // φ | ψ collapses into one predicate through the character algebra.
  Re DigitOrLetter =
      M.union_(M.pred(CharSet::digit()), M.pred(CharSet::asciiLetter()));
  EXPECT_EQ(M.kind(DigitOrLetter), RegexKind::Pred);
  EXPECT_EQ(M.predSet(DigitOrLetter),
            CharSet::digit().unionWith(CharSet::asciiLetter()));
  // Disjoint predicates intersect to ⊥, collapsing the whole conjunction.
  Re DigitAndLetter =
      M.inter(M.pred(CharSet::digit()), M.pred(CharSet::asciiLetter()));
  EXPECT_EQ(DigitAndLetter, M.empty());
}

TEST_F(RegexTest, StarLaws) {
  Re A = M.chr('a');
  EXPECT_EQ(M.star(M.epsilon()), M.epsilon());
  EXPECT_EQ(M.star(M.empty()), M.epsilon());
  EXPECT_EQ(M.star(M.star(A)), M.star(A));
  EXPECT_TRUE(M.nullable(M.star(A)));
  EXPECT_EQ(M.star(M.anyChar()), M.top());
}

TEST_F(RegexTest, LoopNormalization) {
  Re A = M.chr('a');
  EXPECT_EQ(M.loop(A, 0, 0), M.epsilon());
  EXPECT_EQ(M.loop(A, 1, 1), A);
  EXPECT_EQ(M.loop(A, 0, LoopInf), M.star(A));
  EXPECT_EQ(M.loop(M.epsilon(), 3, 7), M.epsilon());
  EXPECT_EQ(M.loop(M.empty(), 2, 4), M.empty());
  EXPECT_EQ(M.loop(M.empty(), 0, 4), M.epsilon());
  // Nullable bodies force the lower bound to 0 (increasing-powers chain).
  Re OptA = M.opt(A);
  Re L = M.loop(OptA, 3, 5);
  EXPECT_EQ(M.node(L).LoopMin, 0u);
  EXPECT_EQ(M.node(L).LoopMax, 5u);
  // (S*){m,n} = S*.
  EXPECT_EQ(M.loop(M.star(A), 2, 9), M.star(A));
}

TEST_F(RegexTest, EpsilonInterRules) {
  Re A = M.chr('a');
  // ε & a = ⊥ (a is not nullable); ε & a* = ε.
  EXPECT_EQ(M.inter(M.epsilon(), A), M.empty());
  EXPECT_EQ(M.inter(M.epsilon(), M.star(A)), M.epsilon());
}

TEST_F(RegexTest, NullabilityComputation) {
  Re A = M.chr('a'), B = M.chr('b');
  EXPECT_FALSE(M.nullable(M.concat(A, B)));
  EXPECT_TRUE(M.nullable(M.concat(M.star(A), M.star(B))));
  EXPECT_TRUE(M.nullable(M.union_(A, M.epsilon())));
  EXPECT_FALSE(M.nullable(M.inter(M.star(A), B)));
  EXPECT_TRUE(M.nullable(M.complement(A)));
  EXPECT_FALSE(M.nullable(M.complement(M.star(A))));
}

TEST_F(RegexTest, MetricsCount) {
  // ♯(R) counts predicate leaves in the syntax tree.
  Re A = M.chr('a'), B = M.chr('b');
  Re R = M.inter(M.concat(M.top(), M.concat(A, M.top())),
                 M.complement(M.concat(M.top(), M.concat(B, M.top()))));
  // .*a.* has 3 preds; ~(.*b.*) has 3; total 6.
  EXPECT_EQ(M.node(R).NumPreds, 6u);
}

TEST_F(RegexTest, StructuralClassPredicates) {
  Re A = M.chr('a'), B = M.chr('b');
  Re Plain = M.concat(M.star(A), M.union_(A, B));
  EXPECT_TRUE(M.isPlainRe(Plain));
  EXPECT_TRUE(M.isBooleanOverRe(Plain));

  Re Bool = M.inter(Plain, M.complement(M.star(B)));
  EXPECT_FALSE(M.isPlainRe(Bool));
  EXPECT_TRUE(M.isBooleanOverRe(Bool));

  // ~ under concat leaves B(RE).
  Re NotBre = M.concat(M.complement(A), B);
  EXPECT_FALSE(M.isBooleanOverRe(NotBre));

  EXPECT_TRUE(M.isClean(Bool));
  EXPECT_FALSE(M.isClean(M.empty()));
}

TEST_F(RegexTest, CollectPredicates) {
  Re R = M.concat(M.pred(CharSet::digit()),
                  M.union_(M.pred(CharSet::digit()), M.chr('x')));
  std::vector<CharSet> Ps = M.collectPredicates(R);
  // \d occurs twice but is collected once; \d|x merged into one class.
  EXPECT_EQ(Ps.size(), 2u);
}

TEST_F(RegexTest, WordAndLiteral) {
  Re W = M.literal("ab");
  EXPECT_EQ(W, M.concat(M.chr('a'), M.chr('b')));
  EXPECT_EQ(M.literal(""), M.epsilon());
}

/// Random regex generator shared by the property suites.
Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(3)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  case 5: {
    uint32_t Min = static_cast<uint32_t>(R.below(3));
    uint32_t Max = Min + static_cast<uint32_t>(R.below(3));
    if (Max == 0)
      Max = 1;
    return M.loop(randomRegex(M, R, Depth - 1), Min, Max);
  }
  default:
    return randomRegex(M, R, 0);
  }
}

class RegexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegexPropertyTest, SmartConstructorLawsOnRandomTerms) {
  RegexManager M;
  Rng R(GetParam());
  Re A = randomRegex(M, R, 3);
  Re B = randomRegex(M, R, 3);
  Re C = randomRegex(M, R, 3);

  EXPECT_EQ(M.union_(A, B), M.union_(B, A));
  EXPECT_EQ(M.inter(A, B), M.inter(B, A));
  EXPECT_EQ(M.union_(A, A), A);
  EXPECT_EQ(M.inter(A, A), A);
  EXPECT_EQ(M.union_(M.union_(A, B), C), M.union_(A, M.union_(B, C)));
  EXPECT_EQ(M.inter(M.inter(A, B), C), M.inter(A, M.inter(B, C)));
  EXPECT_EQ(M.complement(M.complement(A)), A);
  EXPECT_EQ(M.concat(M.concat(A, B), C), M.concat(A, M.concat(B, C)));
  EXPECT_EQ(M.union_(A, M.complement(A)), M.top());
  EXPECT_EQ(M.inter(A, M.complement(A)), M.empty());
  EXPECT_TRUE(M.isNormalized(M.concat(M.concat(A, B), C)));
}

TEST_P(RegexPropertyTest, NullabilityMatchesDeMorganOverCompl) {
  RegexManager M;
  Rng R(GetParam());
  Re A = randomRegex(M, R, 3);
  Re B = randomRegex(M, R, 3);
  EXPECT_EQ(M.nullable(M.complement(A)), !M.nullable(A));
  EXPECT_EQ(M.nullable(M.union_(A, B)), M.nullable(A) || M.nullable(B));
  EXPECT_EQ(M.nullable(M.inter(A, B)), M.nullable(A) && M.nullable(B));
  EXPECT_EQ(M.nullable(M.concat(A, B)), M.nullable(A) && M.nullable(B));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

/// Builds the I-th member of a family of pairwise-distinct regexes through
/// several constructor shapes (stresses every interning path: Pred, Concat,
/// Star, Loop, Union, Inter, Compl).
Re stressRegex(RegexManager &M, uint32_t I) {
  Re Digits = M.literal("k" + std::to_string(I));
  Re Cls = M.pred(CharSet::range('a' + I % 20, 'a' + I % 20 + 5));
  Re Shape;
  switch (I % 4) {
  case 0:
    Shape = M.concat(Digits, M.star(Cls));
    break;
  case 1:
    Shape = M.union_(Digits, M.loop(Cls, 1, 2 + I % 7));
    break;
  case 2:
    Shape = M.inter(M.concat(Cls, Digits), M.top());
    break;
  default:
    Shape = M.concat(M.complement(Digits), Cls);
    break;
  }
  return Shape;
}

TEST(RegexInternStress, HundredThousandDistinctRebuildIsIdentity) {
  // Guards the open-addressing interning table against collision and
  // rehash bugs: 100k structurally distinct regexes, then an identical
  // rebuild pass. Every rebuild must return the identical interned id and
  // the arena must not grow by a single node.
  constexpr uint32_t N = 100000;
  RegexManager M;
  std::vector<Re> First;
  First.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    First.push_back(stressRegex(M, I));

  // The family is pairwise distinct by construction (distinct literals).
  std::vector<Re> Sorted = First;
  std::sort(Sorted.begin(), Sorted.end());
  ASSERT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()), Sorted.end())
      << "stress family must be pairwise distinct";

  size_t NodesAfterFirst = M.numNodes();
  for (uint32_t I = 0; I != N; ++I)
    ASSERT_EQ(stressRegex(M, I), First[I]) << "rebuild diverged at " << I;
  EXPECT_EQ(M.numNodes(), NodesAfterFirst)
      << "rebuilding equal terms must not intern new nodes";

  // Interning ids are deterministic: a fresh manager fed the same build
  // sequence assigns the same ids.
  RegexManager M2;
  for (uint32_t I = 0; I != N; ++I)
    ASSERT_EQ(stressRegex(M2, I).Id, First[I].Id) << "id drift at " << I;
}

TEST(RegexInternStress, ReserveDoesNotDisturbInterning) {
  RegexManager Plain, Reserved;
  Reserved.reserve(1 << 18);
  for (uint32_t I = 0; I != 5000; ++I)
    ASSERT_EQ(stressRegex(Plain, I).Id, stressRegex(Reserved, I).Id);
  EXPECT_EQ(Plain.numNodes(), Reserved.numNodes());
}

} // namespace
