//===- tests/BatchSolverTest.cpp - Parallel batch front-end tests -----------===//
///
/// \file
/// The properties the serving front end must guarantee:
///   - results come back in input order, each answering its own query;
///   - verdicts and (BFS) witness lengths are identical across thread
///     counts — parallelism must never change an answer;
///   - per-query budgets (deadline / state cap) apply to the single query
///     that carries them;
///   - parse failures are reported per query, not thrown batch-wide.
///
//===----------------------------------------------------------------------===//

#include "portfolio/BatchSolver.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sbd;

namespace {

/// A mixed corpus of ~50 constraints: password/date-style intersections,
/// Boolean combinations with complement, loop arithmetic, and blowup-shaped
/// unsat instances — the forms the paper's evaluation exercises.
std::vector<std::string> mixedCorpus() {
  std::vector<std::string> Patterns = {
      // Handwritten sat/unsat anchors.
      "(.*\\d.*)&(.*[a-z].*)&.{4,12}",
      "(.*\\d.*)&(.*[a-z].*)&(.*[A-Z].*)&.{8,16}&~(.*\\s.*)",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "(ab)+&(ba)+",
      "a*&b*&~()",
      "(a|b){3}&~(.*aa.*)&~(.*bb.*)",
      "~(.*ab.*)&.*a.*&.*b.*",
      "a{2,5}b{1,3}&a{3,}b*",
      "(abc|abd|abe)&ab[de]",
      "~(~(a*))&a{2,}",
  };
  // Blowup family (.*a.{k})&(.*b.{k}): sat for every k.
  for (int K = 1; K <= 8; ++K)
    Patterns.push_back("(.*a.{" + std::to_string(K) + "})&(.*b.{" +
                       std::to_string(K) + "})");
  // Conflicting window vs literal length: unsat when the literal is longer.
  for (int L = 1; L <= 8; ++L) {
    std::string Lit(static_cast<size_t>(L + 4), 'x');
    Patterns.push_back(Lit + "&.{0," + std::to_string(L) + "}");
  }
  // Loop-arithmetic families: a^{2i} ∩ a^{odd} alternating sat/unsat.
  for (int I = 1; I <= 8; ++I) {
    Patterns.push_back("(aa){" + std::to_string(I) + "}&a{" +
                       std::to_string(2 * I) + "}");
    Patterns.push_back("(aa){" + std::to_string(I) + "}&a{" +
                       std::to_string(2 * I + 1) + "}");
  }
  // Subset-style complements: prefix language vs its own refinement.
  for (int I = 1; I <= 8; ++I) {
    std::string Cls = "[a-" + std::string(1, static_cast<char>('a' + I)) + "]";
    Patterns.push_back(Cls + "*&~(" + Cls + "{0,3})");
  }
  return Patterns;
}

std::vector<BatchQuery> toQueries(const std::vector<std::string> &Patterns) {
  std::vector<BatchQuery> Queries;
  Queries.reserve(Patterns.size());
  for (const std::string &P : Patterns)
    Queries.push_back({P, SolveOptions{}}); // BFS, no budget: exact verdicts
  return Queries;
}

TEST(BatchSolverTest, MatchesSequentialReferenceSolver) {
  std::vector<std::string> Patterns = mixedCorpus();
  ASSERT_GE(Patterns.size(), 50u);

  BatchSolver Batch;
  std::vector<BatchResult> Results = Batch.solveAll(toQueries(Patterns));
  ASSERT_EQ(Results.size(), Patterns.size());

  for (size_t I = 0; I != Patterns.size(); ++I) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    RegexSolver S(E);
    Re R = parseRegexOrDie(M, Patterns[I]);
    SolveResult Ref = S.checkSat(R);
    ASSERT_TRUE(Results[I].ParseOk) << Patterns[I];
    EXPECT_EQ(Results[I].Result.Status, Ref.Status) << Patterns[I];
    if (Ref.isSat())
      EXPECT_EQ(Results[I].Result.Witness.size(), Ref.Witness.size())
          << Patterns[I];
  }
}

TEST(BatchSolverTest, DeterministicAcrossThreadCounts) {
  std::vector<BatchQuery> Queries = toQueries(mixedCorpus());

  BatchOptions OneThread;
  OneThread.NumThreads = 1;
  BatchSolver S1(OneThread);
  std::vector<BatchResult> R1 = S1.solveAll(Queries);

  BatchOptions EightThreads;
  EightThreads.NumThreads = 8;
  BatchSolver S8(EightThreads);
  std::vector<BatchResult> R8 = S8.solveAll(Queries);

  ASSERT_EQ(R1.size(), R8.size());
  size_t Sat = 0, Unsat = 0;
  for (size_t I = 0; I != R1.size(); ++I) {
    ASSERT_TRUE(R1[I].ParseOk);
    ASSERT_TRUE(R8[I].ParseOk);
    EXPECT_EQ(R1[I].Result.Status, R8[I].Result.Status)
        << Queries[I].Pattern;
    EXPECT_EQ(R1[I].Result.Witness.size(), R8[I].Result.Witness.size())
        << Queries[I].Pattern;
    if (R1[I].Result.isSat())
      ++Sat;
    if (R1[I].Result.isUnsat())
      ++Unsat;
  }
  // The corpus must genuinely exercise both verdicts.
  EXPECT_GE(Sat, 10u);
  EXPECT_GE(Unsat, 10u);
}

TEST(BatchSolverTest, DeterministicWithArenaReuse) {
  // Warm-arena mode keeps interned state across the queries of one worker;
  // BFS verdicts and shortest-witness lengths must still be independent of
  // thread count and of which worker processed which query.
  std::vector<BatchQuery> Queries = toQueries(mixedCorpus());

  BatchOptions Reuse1;
  Reuse1.NumThreads = 1;
  Reuse1.ReuseArenas = true;
  BatchOptions Reuse8;
  Reuse8.NumThreads = 8;
  Reuse8.ReuseArenas = true;

  BatchSolver S1(Reuse1), S8(Reuse8);
  std::vector<BatchResult> R1 = S1.solveAll(Queries);
  std::vector<BatchResult> R8 = S8.solveAll(Queries);
  ASSERT_EQ(R1.size(), R8.size());
  for (size_t I = 0; I != R1.size(); ++I) {
    EXPECT_EQ(R1[I].Result.Status, R8[I].Result.Status)
        << Queries[I].Pattern;
    EXPECT_EQ(R1[I].Result.Witness.size(), R8[I].Result.Witness.size())
        << Queries[I].Pattern;
  }
}

TEST(BatchSolverTest, PerQueryBudgetsApplyIndividually) {
  // Query 1 carries a one-state budget and must come back Unknown; its
  // neighbors carry no budget and must still be decided exactly.
  std::vector<BatchQuery> Queries;
  Queries.push_back({"(ab)+&(ba)+", SolveOptions{}});
  SolveOptions Tiny;
  Tiny.MaxStates = 1;
  Queries.push_back({"(.*a.{6})&(.*b.{6})&(.*c.{6})", Tiny});
  Queries.push_back({"a{3}", SolveOptions{}});

  BatchOptions Opts;
  Opts.NumThreads = 3;
  BatchSolver Batch(Opts);
  std::vector<BatchResult> Results = Batch.solveAll(Queries);

  EXPECT_EQ(Results[0].Result.Status, SolveStatus::Unsat);
  EXPECT_EQ(Results[1].Result.Status, SolveStatus::Unknown);
  EXPECT_EQ(Results[2].Result.Status, SolveStatus::Sat);
  EXPECT_EQ(Results[2].Result.Witness.size(), 3u);
}

TEST(BatchSolverTest, ParseFailuresAreLocalToTheirQuery) {
  std::vector<BatchQuery> Queries;
  Queries.push_back({"a{3}", SolveOptions{}});
  Queries.push_back({"(unclosed", SolveOptions{}});
  Queries.push_back({"b{2}", SolveOptions{}});

  BatchSolver Batch;
  std::vector<BatchResult> Results = Batch.solveAll(Queries);
  EXPECT_TRUE(Results[0].ParseOk);
  EXPECT_FALSE(Results[1].ParseOk);
  EXPECT_FALSE(Results[1].ParseError.empty());
  EXPECT_EQ(Results[1].Result.Status, SolveStatus::Unsupported);
  EXPECT_TRUE(Results[2].ParseOk);
  EXPECT_EQ(Results[2].Result.Status, SolveStatus::Sat);
}

TEST(BatchSolverTest, AggregatesCacheStats) {
  BatchSolver Batch;
  (void)Batch.solveAll(toQueries(mixedCorpus()));
#if SBD_STATS
  EXPECT_GT(Batch.stats().InternMisses, 0u);
  EXPECT_GT(Batch.stats().Lookups, 0u);
#endif
}

TEST(BatchSolverTest, EmptyBatch) {
  BatchSolver Batch;
  EXPECT_TRUE(Batch.solveAll({}).empty());
}

TEST(BatchSolverTest, ParseErrorsCarryStopReason) {
  BatchSolver Batch;
  std::vector<BatchResult> Results =
      Batch.solveAll({{"(unclosed", SolveOptions{}}});
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].Result.Stop, StopReason::ParseError);
}

#if SBD_OBS
TEST(BatchSolverTest, RegistryAggregationDeterministicAcrossThreads) {
  // With arena recycling (the default) every query runs on a fresh stack,
  // so the summed work counters must not depend on how queries were
  // distributed over workers. Time-valued counters are excluded — wall
  // clock is never deterministic. Audit counters (SBD_AUDIT builds) are
  // excluded too: the intern-time hooks also fire for the base nodes each
  // worker interns when constructing its stack, so they scale with the
  // number of workers, not with the queries.
  std::vector<BatchQuery> Queries = toQueries(mixedCorpus());
  auto runAndSnapshot = [&](unsigned Threads) {
    obs::MetricsRegistry::global().reset();
    BatchOptions Opts;
    Opts.NumThreads = Threads;
    BatchSolver Batch(Opts);
    (void)Batch.solveAll(Queries); // workers joined on return
    return obs::MetricsRegistry::global().snapshot();
  };
  obs::MetricShard S1 = runAndSnapshot(1);
  obs::MetricShard S8 = runAndSnapshot(8);
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    std::string Name = obs::counterName(static_cast<obs::Counter>(I));
    if (Name.size() >= 3 && Name.compare(Name.size() - 3, 3, "_us") == 0)
      continue;
    if (Name.compare(0, 6, "audit_") == 0)
      continue;
    EXPECT_EQ(S1.C[I], S8.C[I]) << Name;
  }
  EXPECT_GT(S1.get(obs::Counter::DerivativeCalls), 0u);
  EXPECT_EQ(S1.get(obs::Counter::QueriesSolved), Queries.size());
  obs::MetricsRegistry::global().reset();
}

TEST(BatchSolverTest, PerQueryStatsArePopulated) {
  BatchOptions Opts;
  Opts.NumThreads = 2;
  BatchSolver Batch(Opts);
  std::vector<BatchResult> Results =
      Batch.solveAll(toQueries({"a{3}b*", "(ab)+&(ba)+"}));
  ASSERT_EQ(Results.size(), 2u);
  for (const BatchResult &R : Results) {
    // Derivative counters only tick on derivative-engine routes; the
    // portfolio may send small positive patterns to Antimirov.
    if (R.Result.Stats.Engine == SolveEngine::DerivBfs ||
        R.Result.Stats.Engine == SolveEngine::DerivDfs)
      EXPECT_GT(R.Result.Stats.DerivativeCalls, 0u);
    EXPECT_GT(R.Result.Stats.SolverSteps, 0u);
    EXPECT_GE(R.Result.Stats.ParseUs, 0);
    EXPECT_GE(R.Result.Stats.TotalUs, 0);
  }
}
#endif // SBD_OBS

} // namespace
