//===- tests/DotTest.cpp - GraphViz rendering sanity tests --------------------===//

#include "automata/Dot.h"

#include "automata/Glushkov.h"
#include "re/RegexParser.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class DotTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  static size_t countOccurrences(const std::string &Hay,
                                 const std::string &Needle) {
    size_t Count = 0, Pos = 0;
    while ((Pos = Hay.find(Needle, Pos)) != std::string::npos) {
      ++Count;
      Pos += Needle.size();
    }
    return Count;
  }
};

TEST_F(DotTest, SbfaDocumentStructure) {
  auto A = Sbfa::build(E, re("(.*[a-z].*)&(.*\\d.*)"));
  ASSERT_TRUE(A.has_value());
  std::string Dot = sbfaToDot(*A);
  EXPECT_EQ(Dot.rfind("digraph sbfa {", 0), 0u);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}"), std::string::npos);
  // One node line per state; final states use double circles.
  EXPECT_EQ(countOccurrences(Dot, "shape=doublecircle") +
                countOccurrences(Dot, "shape=circle"),
            A->numStates());
  EXPECT_GE(countOccurrences(Dot, "shape=doublecircle"), 1u); // .*
  // The conjunction structure shows up as a dashed junction box.
  EXPECT_NE(Dot.find("shape=box, style=dashed"), std::string::npos);
  // Labels are escaped: no raw '"' inside a label payload breaks quoting
  // (every quote in the output is structural).
  EXPECT_EQ(countOccurrences(Dot, "\\\"") % 2, 0u);
}

TEST_F(DotTest, NfaAndDfaDocuments) {
  auto N = compileReToNfa(M, re("(a|b)*abb"));
  ASSERT_TRUE(N.has_value());
  std::string NfaDot = nfaToDot(*N);
  EXPECT_EQ(NfaDot.rfind("digraph nfa {", 0), 0u);
  EXPECT_EQ(countOccurrences(NfaDot, "shape=doublecircle"), 1u);
  EXPECT_GE(countOccurrences(NfaDot, "->"), N->numTransitions());

  auto D = Sdfa::determinize(*N, 0);
  ASSERT_TRUE(D.has_value());
  std::string DfaDot = dfaToDot(D->minimize());
  EXPECT_EQ(DfaDot.rfind("digraph dfa {", 0), 0u);
  EXPECT_NE(DfaDot.find("start -> s"), std::string::npos);
}

} // namespace
