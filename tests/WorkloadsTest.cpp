//===- tests/WorkloadsTest.cpp - Benchmark generator validation --------------===//
///
/// \file
/// The workload generators carry ground-truth sat/unsat labels computed by
/// construction. This suite validates the generators themselves: labels
/// must agree with the reference solver, counts must match the paper's
/// figures, generation must be deterministic, and every pattern must parse.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class WorkloadsTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};

  /// Every instance must parse; labeled instances must agree with the
  /// solver.
  void validate(const BenchSuite &Suite) {
    for (const BenchInstance &Inst : Suite.Instances) {
      RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
      ASSERT_TRUE(Parsed.Ok)
          << Suite.Name << "/" << Inst.Name << ": " << Inst.Pattern;
      if (!Inst.ExpectedSat.has_value())
        continue;
      SolveOptions Opts;
      Opts.MaxStates = 300000;
      Opts.Strategy = SearchStrategy::Dfs;
      SolveResult Res = S.checkSat(Parsed.Value, Opts);
      ASSERT_NE(Res.Status, SolveStatus::Unknown)
          << Suite.Name << "/" << Inst.Name;
      EXPECT_EQ(Res.Status == SolveStatus::Sat, *Inst.ExpectedSat)
          << Suite.Name << "/" << Inst.Name << ": " << Inst.Pattern;
    }
  }
};

TEST_F(WorkloadsTest, HandwrittenCountsMatchPaper) {
  EXPECT_EQ(makeDateFamily().Instances.size(), 20u);
  EXPECT_EQ(makePasswordFamily().Instances.size(), 34u);
  EXPECT_EQ(makeBooleanLoopsFamily().Instances.size(), 21u);
  EXPECT_EQ(makeDeterminizationBlowupFamily().Instances.size(), 14u);
  size_t Total = 0;
  for (const BenchSuite &Suite : handwrittenSuites())
    Total += Suite.Instances.size();
  EXPECT_EQ(Total, 89u); // the paper's H total
}

TEST_F(WorkloadsTest, HandwrittenLabelsAgreeWithSolver) {
  for (const BenchSuite &Suite : handwrittenSuites())
    validate(Suite);
}

TEST_F(WorkloadsTest, GeneratedLabelsAgreeWithSolver) {
  validate(makeKaluzaLike(120, 7));
  validate(makeSlogLike(120, 8));
  validate(makeNornLike(120, 9));
  validate(makeNornBooleanLike(120, 13));
  validate(makeSyGuSLike(120, 10));
  validate(makeRegExLibSubset(30, 11));
  validate(makeRegExLibIntersection(30, 12));
}

TEST_F(WorkloadsTest, GenerationIsDeterministic) {
  BenchSuite A = makeKaluzaLike(50, 123);
  BenchSuite B = makeKaluzaLike(50, 123);
  ASSERT_EQ(A.Instances.size(), B.Instances.size());
  for (size_t I = 0; I != A.Instances.size(); ++I) {
    EXPECT_EQ(A.Instances[I].Pattern, B.Instances[I].Pattern);
    EXPECT_EQ(A.Instances[I].ExpectedSat, B.Instances[I].ExpectedSat);
  }
  // A different seed produces a different suite.
  BenchSuite C = makeKaluzaLike(50, 124);
  bool AnyDifferent = false;
  for (size_t I = 0; I != A.Instances.size(); ++I)
    AnyDifferent = AnyDifferent ||
                   A.Instances[I].Pattern != C.Instances[I].Pattern;
  EXPECT_TRUE(AnyDifferent);
}

TEST_F(WorkloadsTest, ScalingRules) {
  EXPECT_EQ(scaledCount(100, 1.0), 100u);
  EXPECT_EQ(scaledCount(100, 0.05), 5u);
  EXPECT_EQ(scaledCount(3, 0.001), 1u); // never below one instance
}

TEST_F(WorkloadsTest, ClassificationFlags) {
  for (const BenchSuite &Suite : nonBooleanSuites(0.01, 1))
    for (const BenchInstance &Inst : Suite.Instances)
      EXPECT_FALSE(Inst.IsBoolean) << Inst.Name;
  for (const BenchSuite &Suite : booleanSuites(0.05, 1))
    for (const BenchInstance &Inst : Suite.Instances)
      EXPECT_TRUE(Inst.IsBoolean) << Inst.Name;
  // Complement flags match the pattern text.
  for (const BenchSuite &Suite : handwrittenSuites())
    for (const BenchInstance &Inst : Suite.Instances)
      EXPECT_EQ(Inst.UsesComplement,
                Inst.Pattern.find('~') != std::string::npos)
          << Inst.Name;
}

} // namespace
