//===- tests/LanguageOpsTest.cpp - reverse / enumerate tests -----------------===//

#include "core/LanguageOps.h"

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sbd;

namespace {

class LanguageOpsTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(LanguageOpsTest, ReverseStructure) {
  EXPECT_EQ(reverseRegex(M, re("abc")), re("cba"));
  EXPECT_EQ(reverseRegex(M, re("a*")), re("a*"));
  EXPECT_EQ(reverseRegex(M, re("ab|cd")), re("ba|dc"));
  EXPECT_EQ(reverseRegex(M, re("(ab)*")), re("(ba)*"));
  EXPECT_EQ(reverseRegex(M, re("~(ab)")), re("~(ba)"));
  EXPECT_EQ(reverseRegex(M, re("abc.*")), re(".*cba"));
  // Leaves are fixed points.
  EXPECT_EQ(reverseRegex(M, M.empty()), M.empty());
  EXPECT_EQ(reverseRegex(M, M.epsilon()), M.epsilon());
  EXPECT_EQ(reverseRegex(M, M.top()), M.top());
}

TEST_F(LanguageOpsTest, ReverseIsInvolutive) {
  const char *Patterns[] = {"abc",   "a*b+c?",    "(ab|cd){2,5}",
                            "~(ab)", "a&(b|ab)",  ".*\\d.*&~(.*01.*)"};
  for (const char *P : Patterns) {
    Re R = re(P);
    EXPECT_EQ(reverseRegex(M, reverseRegex(M, R)), R) << P;
  }
}

TEST_F(LanguageOpsTest, ReverseLanguageSemantics) {
  Rng Rand(5);
  const char *Patterns[] = {"ab*c",  "(ab|b)*",  "~(.*ab.*)",
                            "a.{2}", "(a|b)&~(a)", "x(yz){1,3}"};
  static const uint32_t Alphabet[] = {'a', 'b', 'c', 'x', 'y', 'z'};
  for (const char *P : Patterns) {
    Re R = re(P);
    Re Rev = reverseRegex(M, R);
    for (int I = 0; I != 60; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(6);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      std::vector<uint32_t> WRev(W.rbegin(), W.rend());
      EXPECT_EQ(E.matches(R, W), E.matches(Rev, WRev))
          << P << " on " << escapeWord(W);
    }
  }
}

TEST_F(LanguageOpsTest, ReverseSuffixToPrefixSolving) {
  // rev turns a suffix constraint into a prefix constraint with the same
  // satisfiability.
  RegexSolver S(E);
  Re Suffix = re(".*xyz&.{3,5}");
  Re Pref = reverseRegex(M, Suffix);
  EXPECT_EQ(S.checkSat(Suffix).Status, S.checkSat(Pref).Status);
  EXPECT_TRUE(
      S.checkEquivalent(reverseRegex(M, Pref), Suffix).isUnsat());
}

TEST_F(LanguageOpsTest, EnumerateFiniteLanguageExactly) {
  // L(a|bc|dd) = {a, bc, dd}.
  auto Words = enumerateLanguage(E, re("a|bc|dd"), 10);
  ASSERT_EQ(Words.size(), 3u);
  EXPECT_EQ(Words[0], fromUtf8("a")); // shortest first
  std::vector<std::string> Rendered;
  for (const auto &W : Words)
    Rendered.push_back(toUtf8(W));
  std::sort(Rendered.begin(), Rendered.end());
  EXPECT_EQ(Rendered, (std::vector<std::string>{"a", "bc", "dd"}));
}

TEST_F(LanguageOpsTest, EnumerateRespectsBound) {
  auto Words = enumerateLanguage(E, re("a*"), 5);
  ASSERT_EQ(Words.size(), 5u);
  for (size_t I = 0; I != Words.size(); ++I) {
    EXPECT_EQ(Words[I].size(), I); // ε, a, aa, aaa, aaaa
    for (uint32_t C : Words[I])
      EXPECT_EQ(C, uint32_t('a'));
  }
}

TEST_F(LanguageOpsTest, EnumerateEmptyLanguage) {
  EXPECT_TRUE(enumerateLanguage(E, M.empty(), 5).empty());
  EXPECT_TRUE(enumerateLanguage(E, re("a&b"), 5).empty());
}

TEST_F(LanguageOpsTest, FindFirstMatchBasics) {
  auto find = [&](const char *Pat, const char *Text) {
    return findFirstMatch(E, re(Pat), fromUtf8(Text));
  };
  using Span = std::pair<size_t, size_t>;
  EXPECT_EQ(find("ab", "xxabyy"), std::make_optional(Span{2, 4}));
  EXPECT_EQ(find("ab", "ab"), std::make_optional(Span{0, 2}));
  EXPECT_EQ(find("ab", "xxx"), std::nullopt);
  EXPECT_EQ(find("\\d+", "ab12cd"), std::make_optional(Span{2, 3}));
  // Earliest end, then leftmost start: "aa" in "caab" ends first at 3;
  // starts ending there: only 1.
  EXPECT_EQ(find("aa", "caab"), std::make_optional(Span{1, 3}));
  // Nullable patterns match the empty span at position 0.
  EXPECT_EQ(find("a*", "bbb"), std::make_optional(Span{0, 0}));
  EXPECT_EQ(find("()", ""), std::make_optional(Span{0, 0}));
  // Empty language never matches.
  EXPECT_EQ(findFirstMatch(E, M.empty(), fromUtf8("abc")), std::nullopt);
}

TEST_F(LanguageOpsTest, FindFirstMatchLeftmostAmongSameEnd) {
  // Both "ba" and "aba" end at position 3 in "xaba"; leftmost start wins.
  auto Span = findFirstMatch(E, re("ba|aba"), fromUtf8("xaba"));
  ASSERT_TRUE(Span.has_value());
  EXPECT_EQ(Span->first, 1u);
  EXPECT_EQ(Span->second, 4u);
}

TEST_F(LanguageOpsTest, FindFirstMatchExtendedOperators) {
  // First span that contains a digit but not "01".
  Re R = M.inter(re("\\d{2}"), re("~(01)"));
  auto Span = findFirstMatch(E, R, fromUtf8("x01234"));
  ASSERT_TRUE(Span.has_value());
  // Two-digit spans: "01"@1 (excluded), "12"@2 ends at 4; earliest end
  // among allowed spans is 4 with start 2.
  EXPECT_EQ(*Span, (std::pair<size_t, size_t>{2, 4}));
}

TEST_F(LanguageOpsTest, FindFirstMatchAgreesWithBruteForce) {
  Rng Rand(31);
  const char *Patterns[] = {"ab", "a+b", "(ab|ba)", "\\d[a-f]", "a.{2}"};
  static const uint32_t Alphabet[] = {'a', 'b', 'c', '1', 'f'};
  for (const char *P : Patterns) {
    Re R = re(P);
    for (int I = 0; I != 40; ++I) {
      std::vector<uint32_t> W;
      size_t Len = Rand.below(9);
      for (size_t J = 0; J != Len; ++J)
        W.push_back(Alphabet[Rand.below(std::size(Alphabet))]);
      // Brute force: smallest end, then smallest start.
      std::optional<std::pair<size_t, size_t>> Expected;
      for (size_t End = 0; End <= W.size() && !Expected; ++End)
        for (size_t Start = 0; Start <= End; ++Start) {
          std::vector<uint32_t> Slice(W.begin() + Start, W.begin() + End);
          if (E.matches(R, Slice)) {
            Expected = {Start, End};
            break;
          }
        }
      EXPECT_EQ(findFirstMatch(E, R, W), Expected)
          << P << " on " << escapeWord(W);
    }
  }
}

TEST_F(LanguageOpsTest, CountWordsBasics) {
  // |L((a|b){3}) ∩ Σ³| = 8.
  EXPECT_EQ(countWordsOfLength(E, re("(a|b){3}"), 3), 8u);
  EXPECT_EQ(countWordsOfLength(E, re("(a|b){3}"), 2), 0u);
  // a* has exactly one word of each length.
  for (size_t N : {0u, 1u, 5u, 20u})
    EXPECT_EQ(countWordsOfLength(E, re("a*"), N), 1u);
  // ε and ⊥.
  EXPECT_EQ(countWordsOfLength(E, M.epsilon(), 0), 1u);
  EXPECT_EQ(countWordsOfLength(E, M.epsilon(), 1), 0u);
  EXPECT_EQ(countWordsOfLength(E, M.empty(), 0), 0u);
}

TEST_F(LanguageOpsTest, CountWordsBooleanStructure) {
  // Inclusion-exclusion check over {a,b}³ restricted words:
  // |(a|b)³ ∩ .*ab.*| — words over {a,b} of length 3 containing "ab":
  // aba, abb, aab, bab = 4... enumerate to be sure.
  Re R = M.inter(re("(a|b){3}"), re(".*ab.*"));
  auto N = countWordsOfLength(E, R, 3);
  ASSERT_TRUE(N.has_value());
  auto Words = enumerateLanguage(E, R, 100);
  EXPECT_EQ(*N, Words.size());
  // Complement inside a finite window: |(a|b)³ & ~(.*ab.*)| = 8 − N.
  Re C = M.inter(re("(a|b){3}"), re("~(.*ab.*)"));
  EXPECT_EQ(countWordsOfLength(E, C, 3), 8u - *N);
}

TEST_F(LanguageOpsTest, CountWordsUnicodeSaturates) {
  // |Σ| = 0x110000, so |Σ²| overflows nothing but |Σ⁴| exceeds 2^64.
  auto One = countWordsOfLength(E, re("."), 1);
  EXPECT_EQ(One, uint64_t(MaxCodePoint) + 1);
  auto Two = countWordsOfLength(E, re(".*"), 2);
  EXPECT_EQ(Two, (uint64_t(MaxCodePoint) + 1) * (uint64_t(MaxCodePoint) + 1));
  auto Four = countWordsOfLength(E, re(".*"), 4);
  EXPECT_EQ(Four, UINT64_MAX); // saturated
}

TEST_F(LanguageOpsTest, CountWordsAgreesWithEnumeration) {
  const char *Patterns[] = {"(ab|ba)*", "a?b?c?", "(a|b)*c",
                            "\\d{2}", "~(.*aa.*)&(a|b){4}"};
  for (const char *P : Patterns) {
    Re R = re(P);
    for (size_t Len = 0; Len <= 4; ++Len) {
      auto N = countWordsOfLength(E, R, Len);
      ASSERT_TRUE(N.has_value()) << P;
      // Cross-check against exhaustive enumeration when small.
      if (*N <= 64) {
        auto Words = enumerateLanguage(E, R, 500, 500000);
        size_t Matching = 0;
        for (const auto &W : Words)
          if (W.size() == Len)
            ++Matching;
        EXPECT_EQ(*N, Matching) << P << " length " << Len;
      }
    }
  }
}

TEST_F(LanguageOpsTest, CountWordsStateBudget) {
  EXPECT_FALSE(
      countWordsOfLength(E, re("(.*a.{10})&(.*b.{10})"), 3, 5).has_value());
}

TEST_F(LanguageOpsTest, EnumeratedWordsAllMatch) {
  const char *Patterns[] = {"(a|b)*c", ".*\\d.*&~(.*01.*)", "\\w{2,3}",
                            "~(a*)&(a|b)*"};
  for (const char *P : Patterns) {
    Re R = re(P);
    auto Words = enumerateLanguage(E, R, 12);
    EXPECT_FALSE(Words.empty()) << P;
    size_t PrevLen = 0;
    for (const auto &W : Words) {
      EXPECT_TRUE(E.matches(R, W)) << P << " emitted " << escapeWord(W);
      EXPECT_GE(W.size(), PrevLen) << "length-ordered";
      PrevLen = W.size();
    }
    // Distinctness.
    auto Copy = Words;
    std::sort(Copy.begin(), Copy.end());
    EXPECT_EQ(std::unique(Copy.begin(), Copy.end()), Copy.end()) << P;
  }
}

} // namespace
