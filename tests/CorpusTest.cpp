//===- tests/CorpusTest.cpp - End-to-end corpus round trip --------------------===//
///
/// \file
/// Golden end-to-end integration: every instance of the (downscaled)
/// benchmark corpus is rendered to an SMT-LIB script (re/SmtPrinter),
/// re-read and solved through the SMT front end (smt/SmtSolver), and the
/// verdict is compared with the instance's ground-truth label and with the
/// solver's direct answer. This chains regex parser → printer → s-expr
/// reader → theory compiler → implicant enumeration → derivative solver,
/// exactly the path an external user of the exported corpus exercises.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "re/RegexParser.h"
#include "re/SmtPrinter.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class CorpusTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSolver Smt{Solver};

  void roundTrip(const BenchSuite &Suite) {
    SolveOptions Opts;
    Opts.MaxStates = 300000;
    Opts.Strategy = SearchStrategy::Dfs;
    for (const BenchInstance &Inst : Suite.Instances) {
      RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
      ASSERT_TRUE(Parsed.Ok) << Inst.Name;
      std::string Script =
          regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat);
      SmtResult Via = Smt.solveScript(Script, Opts);
      ASSERT_NE(Via.Status, SolveStatus::Unsupported)
          << Inst.Name << "\n" << Script << "\nnote: " << Via.Note;
      if (Via.Status == SolveStatus::Unknown)
        continue; // budget; direct solving may also time out
      if (Inst.ExpectedSat.has_value()) {
        EXPECT_EQ(Via.Status == SolveStatus::Sat, *Inst.ExpectedSat)
            << Inst.Name << "\n" << Script;
      } else {
        SolveResult Direct = Solver.checkSat(Parsed.Value, Opts);
        if (Direct.Status != SolveStatus::Unknown) {
          EXPECT_EQ(Via.Status, Direct.Status) << Inst.Name;
        }
      }
    }
  }
};

TEST_F(CorpusTest, HandwrittenSuitesRoundTrip) {
  for (const BenchSuite &Suite : handwrittenSuites())
    roundTrip(Suite);
}

TEST_F(CorpusTest, GeneratedSuitesRoundTrip) {
  for (const BenchSuite &Suite : nonBooleanSuites(0.01, 99))
    roundTrip(Suite);
  for (const BenchSuite &Suite : booleanSuites(0.05, 99))
    roundTrip(Suite);
}

} // namespace
