//===- tests/FuzzRobustnessTest.cpp - Parser totality under random input ------===//
///
/// \file
/// All three front-end parsers (regex, s-expression, JSON) are total
/// functions: arbitrary byte garbage must produce a parse error or a valid
/// value, never a crash, hang, or invariant violation. This suite throws
/// seeded random inputs — raw bytes, metacharacter soup, and mutated valid
/// inputs — at each parser, and re-validates anything that parses.
///
//===----------------------------------------------------------------------===//

#include "policy/Json.h"
#include "re/RegexParser.h"
#include "smt/SExpr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

std::string randomBytes(Rng &R, size_t MaxLen) {
  size_t Len = R.below(MaxLen + 1);
  std::string Out;
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(static_cast<char>(R.below(256)));
  return Out;
}

std::string randomMetaSoup(Rng &R, size_t MaxLen) {
  static const char Pool[] = "()[]{}|&~*+?.\\-^$#@\"ab01,;: \n";
  size_t Len = R.below(MaxLen + 1);
  std::string Out;
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(Pool[R.below(sizeof(Pool) - 1)]);
  return Out;
}

std::string mutate(Rng &R, std::string In) {
  if (In.empty())
    return In;
  size_t Edits = 1 + R.below(3);
  for (size_t I = 0; I != Edits; ++I) {
    size_t Pos = R.below(In.size());
    switch (R.below(3)) {
    case 0:
      In[Pos] = static_cast<char>(R.below(256));
      break;
    case 1:
      In.erase(Pos, 1);
      break;
    default:
      In.insert(Pos, 1, static_cast<char>(R.below(256)));
      break;
    }
    if (In.empty())
      break;
  }
  return In;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RegexParserIsTotal) {
  RegexManager M;
  Rng R(GetParam());
  for (int I = 0; I != 60; ++I) {
    std::string Input =
        R.chance(1, 2) ? randomMetaSoup(R, 40) : randomBytes(R, 40);
    RegexParseResult Res = parseRegex(M, Input);
    if (!Res.Ok)
      continue;
    // Whatever parsed must print and re-parse to the same term.
    std::string Printed = M.toString(Res.Value);
    RegexParseResult Again = parseRegex(M, Printed);
    ASSERT_TRUE(Again.Ok) << "print of a parsed term failed to reparse: "
                          << Printed;
    EXPECT_EQ(Again.Value, Res.Value) << Printed;
  }
}

TEST_P(FuzzTest, RegexParserSurvivesMutatedValidPatterns) {
  RegexManager M;
  Rng R(GetParam());
  const char *Seeds[] = {
      ".*\\d.*&~(.*01.*)",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}",
      "(.*a.{5})&(.*b.{5})",
      "[\\u4E00-\\u9FFF]+x?",
  };
  for (const char *Seed : Seeds)
    for (int I = 0; I != 25; ++I) {
      std::string Input = mutate(R, Seed);
      RegexParseResult Res = parseRegex(M, Input);
      if (Res.Ok)
        (void)M.toString(Res.Value); // must not crash either
    }
}

TEST_P(FuzzTest, SExprReaderIsTotal) {
  Rng R(GetParam());
  for (int I = 0; I != 60; ++I) {
    std::string Input =
        R.chance(1, 2) ? randomMetaSoup(R, 60) : randomBytes(R, 60);
    (void)parseSExprs(Input); // must terminate without crashing
  }
  // Mutated valid scripts.
  const char *Seed = "(declare-const s String)(assert (str.in_re s "
                     "(re.+ (re.range \"a\" \"z\"))))(check-sat)";
  for (int I = 0; I != 40; ++I)
    (void)parseSExprs(mutate(R, Seed));
}

TEST_P(FuzzTest, JsonReaderIsTotal) {
  Rng R(GetParam());
  for (int I = 0; I != 60; ++I)
    (void)parseJson(R.chance(1, 2) ? randomMetaSoup(R, 60)
                                   : randomBytes(R, 60));
  const char *Seed = R"({"if":{"allOf":[{"field":"date","match":"##"}]}})";
  for (int I = 0; I != 40; ++I)
    (void)parseJson(mutate(R, Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 16));

} // namespace
