//===- tests/AlphabetCompressorTest.cpp - Minterm compression tests ---------===//

#include "charset/AlphabetCompressor.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace sbd;

namespace {

/// Exhaustive reference check on a sample of code points: two points get the
/// same class iff they agree on membership in every predicate.
std::vector<bool> signatureOf(const std::vector<CharSet> &Preds, uint32_t Cp) {
  std::vector<bool> Sig;
  Sig.reserve(Preds.size());
  for (const CharSet &P : Preds)
    Sig.push_back(P.contains(Cp));
  return Sig;
}

/// Sample points that hit every interval boundary neighborhood plus a spread
/// of interior/exterior points.
std::vector<uint32_t> boundarySamples(const std::vector<CharSet> &Preds) {
  std::set<uint32_t> Pts = {0, 1, 0x7F, 0x80, 0xFF, 0x100, MaxCodePoint - 1,
                            MaxCodePoint};
  for (const CharSet &P : Preds)
    for (const CharRange &R : P.ranges()) {
      for (uint32_t D : {0u, 1u}) {
        if (R.Lo >= D)
          Pts.insert(R.Lo - D);
        if (R.Lo + D <= MaxCodePoint)
          Pts.insert(R.Lo + D);
        if (R.Hi >= D)
          Pts.insert(R.Hi - D);
        if (R.Hi + D <= MaxCodePoint)
          Pts.insert(R.Hi + D);
      }
    }
  return {Pts.begin(), Pts.end()};
}

/// Full partition validation: classOf agrees with predicate membership on
/// boundary samples, representatives round-trip, classSets() partition the
/// domain.
void expectValidPartition(const std::vector<CharSet> &Preds) {
  AlphabetCompressor C(Preds);
  ASSERT_GT(C.numClasses(), 0u);

  // classOf ↔ contains cross-check: same class ⇔ same predicate signature.
  std::vector<uint32_t> Pts = boundarySamples(Preds);
  for (uint32_t Cp : Pts) {
    uint16_t Cls = C.classOf(Cp);
    ASSERT_LT(Cls, C.numClasses()) << "class id out of range at U+" << Cp;
    uint32_t Rep = C.representative(Cls);
    EXPECT_EQ(signatureOf(Preds, Cp), signatureOf(Preds, Rep))
        << "U+" << Cp << " disagrees with its class representative U+" << Rep;
    EXPECT_EQ(C.classOf(Rep), Cls) << "representative not in its own class";
    EXPECT_TRUE(C.classSet(Cls).contains(Cp))
        << "classSet(" << Cls << ") misses member U+" << Cp;
  }

  // classSets() is a partition: disjoint, covers the domain.
  std::vector<CharSet> Blocks = C.classSets();
  ASSERT_EQ(Blocks.size(), C.numClasses());
  CharSet Union;
  uint64_t Total = 0;
  for (const CharSet &B : Blocks) {
    EXPECT_FALSE(B.isEmpty());
    EXPECT_TRUE(Union.intersectWith(B).isEmpty()) << "blocks overlap";
    Union = Union.unionWith(B);
    Total += B.count();
  }
  EXPECT_TRUE(Union.isFull());
  EXPECT_EQ(Total, uint64_t(MaxCodePoint) + 1);
}

TEST(AlphabetCompressor, EmptyPredicateSet) {
  AlphabetCompressor C{std::vector<CharSet>{}};
  // No predicates ⇒ one class: the whole alphabet.
  EXPECT_EQ(C.numClasses(), 1u);
  EXPECT_EQ(C.classOf('a'), C.classOf(0x10FFFF));
  EXPECT_TRUE(C.classSet(0).isFull());
  expectValidPartition({});
}

TEST(AlphabetCompressor, DefaultConstructedIsTrivial) {
  AlphabetCompressor C;
  EXPECT_EQ(C.numClasses(), 1u);
  EXPECT_EQ(C.classOf(0), 0u);
  EXPECT_EQ(C.classOf(MaxCodePoint), 0u);
}

TEST(AlphabetCompressor, AdjacentAndTouchingIntervals) {
  // [a-m] and [n-z] touch at m|n; [0-4] and [5-9] touch inside the digit
  // block; the partition must keep all four sides distinct from each other
  // and from the complement.
  std::vector<CharSet> Preds = {CharSet::range('a', 'm'),
                                CharSet::range('n', 'z'),
                                CharSet::range('0', '4'),
                                CharSet::range('5', '9')};
  AlphabetCompressor C(Preds);
  EXPECT_EQ(C.numClasses(), 5u); // four blocks + everything else
  EXPECT_NE(C.classOf('m'), C.classOf('n'));
  EXPECT_NE(C.classOf('4'), C.classOf('5'));
  EXPECT_EQ(C.classOf('a'), C.classOf('m'));
  EXPECT_EQ(C.classOf('n'), C.classOf('z'));
  expectValidPartition(Preds);
}

TEST(AlphabetCompressor, OverlappingPredicates) {
  // Overlaps induce strictly finer classes than either predicate alone.
  std::vector<CharSet> Preds = {CharSet::range('a', 'p'),
                                CharSet::range('h', 'z')};
  AlphabetCompressor C(Preds);
  EXPECT_EQ(C.numClasses(), 4u); // [a-g], [h-p], [q-z], rest
  EXPECT_NE(C.classOf('a'), C.classOf('h'));
  EXPECT_NE(C.classOf('h'), C.classOf('q'));
  EXPECT_NE(C.classOf('a'), C.classOf('q'));
  expectValidPartition(Preds);
}

TEST(AlphabetCompressor, MaxCodePointBoundary) {
  // A predicate ending exactly at U+10FFFF must not emit an off event past
  // the domain, and the last class must include the boundary point.
  std::vector<CharSet> Preds = {CharSet::range(0x10FF00, MaxCodePoint),
                                CharSet::singleton(MaxCodePoint)};
  AlphabetCompressor C(Preds);
  EXPECT_TRUE(Preds[0].contains(C.representative(C.classOf(0x10FF42))));
  EXPECT_NE(C.classOf(0x10FF42), C.classOf(MaxCodePoint));
  EXPECT_NE(C.classOf(0x10FEFF), C.classOf(0x10FF00));
  expectValidPartition(Preds);
}

TEST(AlphabetCompressor, AsciiTableMatchesBinarySearchAtEdge) {
  // Segments straddling the 0xFF/0x100 edge exercise both lookup paths;
  // both must yield the same class for points with equal signatures.
  std::vector<CharSet> Preds = {CharSet::range(0x80, 0x17F),
                                CharSet::range(0xFF, 0x100)};
  AlphabetCompressor C(Preds);
  EXPECT_EQ(C.classOf(0xFF), C.classOf(0x100));  // table path vs search path
  EXPECT_EQ(C.classOf(0xFE), C.classOf(0x101));  // inside [0x80,0x17F] only
  EXPECT_NE(C.classOf(0xFF), C.classOf(0xFE));
  expectValidPartition(Preds);
}

TEST(AlphabetCompressor, MoreThan64Predicates) {
  // Over 64 predicates the signature bitvector spans multiple words; 70
  // disjoint singletons must each get their own class.
  std::vector<CharSet> Preds;
  for (uint32_t I = 0; I != 70; ++I)
    Preds.push_back(CharSet::singleton(0x1000 + 2 * I));
  AlphabetCompressor C(Preds);
  EXPECT_EQ(C.numClasses(), 71u); // 70 singletons + everything else
  std::set<uint16_t> Classes;
  for (uint32_t I = 0; I != 70; ++I)
    Classes.insert(C.classOf(0x1000 + 2 * I));
  EXPECT_EQ(Classes.size(), 70u);
  expectValidPartition(Preds);
}

TEST(AlphabetCompressor, RandomizedCrossCheck) {
  Rng Rand(42);
  for (int Round = 0; Round != 20; ++Round) {
    std::vector<CharSet> Preds;
    size_t N = 1 + Rand.below(8);
    for (size_t I = 0; I != N; ++I) {
      std::vector<CharRange> Rs;
      size_t K = 1 + Rand.below(4);
      for (size_t J = 0; J != K; ++J) {
        uint32_t Lo = static_cast<uint32_t>(Rand.below(MaxCodePoint));
        uint32_t Hi =
            std::min<uint32_t>(MaxCodePoint,
                               Lo + static_cast<uint32_t>(Rand.below(0x200)));
        Rs.push_back({Lo, Hi});
      }
      Preds.push_back(CharSet::fromRanges(std::move(Rs)));
    }
    expectValidPartition(Preds);
  }
}

} // namespace
