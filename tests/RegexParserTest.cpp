//===- tests/RegexParserTest.cpp - Regex surface-syntax tests --------------===//

#include "re/RegexParser.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class ParserTest : public ::testing::Test {
protected:
  RegexManager M;

  Re parse(const std::string &S) { return parseRegexOrDie(M, S); }

  void expectError(const std::string &S) {
    RegexParseResult R = parseRegex(M, S);
    EXPECT_FALSE(R.Ok) << "expected a parse error for: " << S;
  }
};

TEST_F(ParserTest, Literals) {
  EXPECT_EQ(parse("a"), M.chr('a'));
  EXPECT_EQ(parse("abc"), M.literal("abc"));
  EXPECT_EQ(parse("."), M.anyChar());
  EXPECT_EQ(parse("()"), M.epsilon());
  EXPECT_EQ(parse("[]"), M.empty());
}

TEST_F(ParserTest, EscapesAndClasses) {
  EXPECT_EQ(parse("\\d"), M.pred(CharSet::digit()));
  EXPECT_EQ(parse("\\w"), M.pred(CharSet::word()));
  EXPECT_EQ(parse("\\s"), M.pred(CharSet::space()));
  EXPECT_EQ(parse("\\D"), M.pred(CharSet::digit().complement()));
  EXPECT_EQ(parse("\\."), M.chr('.'));
  EXPECT_EQ(parse("\\*"), M.chr('*'));
  EXPECT_EQ(parse("\\n"), M.chr('\n'));
  EXPECT_EQ(parse("\\x41"), M.chr('A'));
  EXPECT_EQ(parse("\\u0041"), M.chr('A'));
  EXPECT_EQ(parse("\\U{1F600}"), M.chr(0x1F600));

  EXPECT_EQ(parse("[a-z]"), M.pred(CharSet::range('a', 'z')));
  EXPECT_EQ(parse("[a-zA-Z]"), M.pred(CharSet::asciiLetter()));
  EXPECT_EQ(parse("[abc]"),
            M.pred(CharSet::fromRanges({{'a', 'c'}})));
  EXPECT_EQ(parse("[^a-z]"),
            M.pred(CharSet::range('a', 'z').complement()));
  EXPECT_EQ(parse("[\\d_]"),
            M.pred(CharSet::digit().unionWith(CharSet::singleton('_'))));
  EXPECT_EQ(parse("[^]"), M.anyChar());
  // '-' at the edges is literal.
  EXPECT_EQ(parse("[-a]"),
            M.pred(CharSet::singleton('-').unionWith(CharSet::singleton('a'))));
  EXPECT_EQ(parse("[a-]"),
            M.pred(CharSet::singleton('-').unionWith(CharSet::singleton('a'))));
}

TEST_F(ParserTest, Operators) {
  Re A = M.chr('a'), B = M.chr('b');
  EXPECT_EQ(parse("a|b"), M.union_(A, B));
  EXPECT_EQ(parse("a&b"), M.inter(A, B));
  EXPECT_EQ(parse("ab"), M.concat(A, B));
  EXPECT_EQ(parse("a*"), M.star(A));
  EXPECT_EQ(parse("a+"), M.plus(A));
  EXPECT_EQ(parse("a?"), M.opt(A));
  EXPECT_EQ(parse("~a"), M.complement(A));
  EXPECT_EQ(parse("~~a"), A);
  EXPECT_EQ(parse(".*"), M.top());
}

TEST_F(ParserTest, Loops) {
  Re A = M.chr('a');
  EXPECT_EQ(parse("a{3}"), M.loop(A, 3, 3));
  EXPECT_EQ(parse("a{2,5}"), M.loop(A, 2, 5));
  EXPECT_EQ(parse("a{2,}"), M.loop(A, 2, LoopInf));
  EXPECT_EQ(parse("a{0,1}"), M.opt(A));
}

TEST_F(ParserTest, Precedence) {
  Re A = M.chr('a'), B = M.chr('b'), C = M.chr('c');
  // Concat binds tighter than & binds tighter than |.
  EXPECT_EQ(parse("ab|c"), M.union_(M.concat(A, B), C));
  EXPECT_EQ(parse("a|b&c"), M.union_(A, M.inter(B, C)));
  EXPECT_EQ(parse("(a|b)c"), M.concat(M.union_(A, B), C));
  // Postfix binds tighter than ~; ~ binds tighter than concat.
  EXPECT_EQ(parse("~a*"), M.complement(M.star(A)));
  EXPECT_EQ(parse("(~a)*"), M.star(M.complement(A)));
  EXPECT_EQ(parse("~ab"), M.concat(M.complement(A), B));
  EXPECT_EQ(parse("~(ab)"), M.complement(M.concat(A, B)));
}

TEST_F(ParserTest, PaperExamples) {
  // The running example of Section 2.
  Re R1 = parse(".*\\d.*");
  Re R2 = parse("~(.*01.*)");
  EXPECT_EQ(R2, M.complement(parse(".*01.*")));
  Re R = M.inter(R1, R2);
  EXPECT_FALSE(M.nullable(R1));
  EXPECT_TRUE(M.nullable(R2));
  EXPECT_FALSE(M.nullable(R));

  // The date format of Fig. 1.
  Re Date = parse("\\d{4}-[a-zA-Z]{3}-\\d{2}");
  EXPECT_FALSE(M.nullable(Date));
  EXPECT_TRUE(M.isPlainRe(Date));

  // The blowup family.
  Re Blow = parse("(.*a.{100})&(.*b.{100})");
  EXPECT_TRUE(M.isBooleanOverRe(Blow));
  EXPECT_FALSE(M.isPlainRe(Blow));
}

TEST_F(ParserTest, Errors) {
  expectError("");
  expectError("a|");
  expectError("(a");
  expectError("a)");
  expectError("*a");
  expectError("a{2");
  expectError("a{5,2}");
  expectError("[a");
  expectError("a\\");
  expectError("~");
  expectError("a**b)");
}

TEST_F(ParserTest, RoundTripFixedCorpus) {
  const char *Patterns[] = {
      "abc",
      "a|b|c",
      "a&b&c",
      "(a|b)*",
      "~(ab)",
      ".*\\d.*",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}",
      "(.*a.{5})&(.*b.{5})",
      "~(.*01.*)&.*\\d.*",
      "[a-f0-9]+",
      "(ab|cd){2,7}",
      "a{3,}",
      "~a*",
      "x(y|())z",
  };
  for (const char *P : Patterns) {
    Re First = parse(P);
    std::string Printed = M.toString(First);
    Re Second = parse(Printed);
    EXPECT_EQ(First, Second) << "round trip failed for \"" << P
                             << "\" printed as \"" << Printed << "\"";
  }
}

// Character-class rendering round-trips through the parser for arbitrary
// sets — the property that makes RegexManager::toString a faithful printer.
class ClassRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassRoundTripTest, CharSetStrParsesBack) {
  RegexManager M;
  Rng R(GetParam());
  for (int I = 0; I != 40; ++I) {
    std::vector<CharRange> Rs;
    size_t N = R.below(6);
    for (size_t J = 0; J != N; ++J) {
      uint32_t Lo = static_cast<uint32_t>(R.below(MaxCodePoint));
      uint32_t Hi = std::min<uint32_t>(
          Lo + static_cast<uint32_t>(R.below(300)), MaxCodePoint);
      Rs.push_back({Lo, Hi});
    }
    CharSet S = CharSet::fromRanges(std::move(Rs));
    Re Direct = M.pred(S);
    RegexParseResult Parsed = parseRegex(M, S.str());
    ASSERT_TRUE(Parsed.Ok) << "failed to parse rendered class: " << S.str();
    EXPECT_EQ(Parsed.Value, Direct) << S.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassRoundTripTest,
                         ::testing::Range<uint64_t>(1, 16));

// Round-trip property over random regexes: print then reparse is identity.
class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(5)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(26)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.pred(CharSet::range('a', 'f'));
    case 3:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  case 5: {
    uint32_t Min = static_cast<uint32_t>(R.below(4));
    uint32_t Max = Min + 1 + static_cast<uint32_t>(R.below(4));
    return M.loop(randomRegex(M, R, Depth - 1), Min, Max);
  }
  default:
    return randomRegex(M, R, 0);
  }
}

TEST_P(ParserRoundTripTest, PrintParseIdentity) {
  RegexManager M;
  Rng R(GetParam());
  for (int I = 0; I != 20; ++I) {
    Re Term = randomRegex(M, R, 4);
    std::string Printed = M.toString(Term);
    RegexParseResult Parsed = parseRegex(M, Printed);
    ASSERT_TRUE(Parsed.Ok) << "failed to reparse \"" << Printed << "\": "
                           << Parsed.Error;
    EXPECT_EQ(Parsed.Value, Term) << "round trip changed \"" << Printed
                                  << "\" into \""
                                  << M.toString(Parsed.Value) << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
