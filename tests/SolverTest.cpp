//===- tests/SolverTest.cpp - Decision procedure tests ----------------------===//

#include "solver/RegexSolver.h"

#include "analysis/Audit.h"
#include "re/RegexParser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class SolverTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }

  /// checkSat and, on Sat, re-verify the witness with the matcher.
  SolveResult sat(Re R) {
    SolveResult Res = S.checkSat(R);
    if (Res.isSat()) {
      EXPECT_TRUE(E.matches(R, Res.Witness))
          << "witness rejected by matcher for " << M.toString(R);
    }
    return Res;
  }
};

TEST_F(SolverTest, TrivialCases) {
  EXPECT_TRUE(sat(M.epsilon()).isSat());
  EXPECT_TRUE(sat(M.top()).isSat());
  EXPECT_TRUE(sat(M.anyChar()).isSat());
  EXPECT_TRUE(sat(re("abc")).isSat());
  EXPECT_TRUE(sat(M.empty()).isUnsat());
}

TEST_F(SolverTest, ShortestWitness) {
  SolveResult R = sat(re("a{3}b*"));
  ASSERT_TRUE(R.isSat());
  EXPECT_EQ(R.Witness.size(), 3u); // BFS ⇒ shortest member "aaa"

  SolveResult R2 = sat(re("x|yyyy"));
  ASSERT_TRUE(R2.isSat());
  EXPECT_EQ(R2.Witness.size(), 1u);
}

TEST_F(SolverTest, UnsatByIntersection) {
  // a+ & b+ is empty.
  EXPECT_TRUE(sat(M.inter(re("a+"), re("b+"))).isUnsat());
  // Strings of a's of length 2 mod 2 vs odd length: (aa)+ & a(aa)* empty.
  EXPECT_TRUE(sat(M.inter(re("(aa)+"), re("a(aa)*"))).isUnsat());
  // Same language, not empty.
  EXPECT_TRUE(sat(M.inter(re("(aa)+"), re("aa(aa)*"))).isSat());
}

TEST_F(SolverTest, UnsatNeedsCycleDetection) {
  // a* & ~(a*) is ⊥ by the constructor laws; build something the
  // constructors cannot see through: a+ & ~(.*a.*).
  EXPECT_TRUE(sat(M.inter(re("a+"), re("~(.*a.*)"))).isUnsat());
  // Loops around a dead cycle: (ab)* & (ba)* shares only ε — sat.
  EXPECT_TRUE(sat(M.inter(re("(ab)*"), re("(ba)*"))).isSat());
  // (ab)+ & (ba)+ is empty and requires exhausting a cyclic graph.
  EXPECT_TRUE(sat(M.inter(re("(ab)+"), re("(ba)+"))).isUnsat());
}

TEST_F(SolverTest, PaperIntroDateExample) {
  // Fig. 1: the sane version is sat...
  Re Shape = re("\\d{4}-[a-zA-Z]{3}-\\d{2}");
  Re Sane = M.inter(Shape, M.union_(re("2019.*"), re("2020.*")));
  SolveResult R = sat(Sane);
  ASSERT_TRUE(R.isSat());
  // ...and the buggy version (.*2019 / .*2020 suffix constraints) is unsat:
  // a 14-character date shape cannot *end* in 2019 or 2020 because
  // positions 11..13 include '-' and letters... it conflicts with the shape.
  Re Buggy = M.inter(Shape, M.union_(re(".*2019"), re(".*2020")));
  EXPECT_TRUE(sat(Buggy).isUnsat());
}

TEST_F(SolverTest, Section2PasswordExample) {
  Re R = M.inter(re(".*\\d.*"), re("~(.*01.*)"));
  SolveResult Res = sat(R);
  ASSERT_TRUE(Res.isSat());
  // The shortest such string is one digit.
  EXPECT_EQ(Res.Witness.size(), 1u);
  EXPECT_TRUE(CharSet::digit().contains(Res.Witness[0]));
}

TEST_F(SolverTest, ComplementOfEverything) {
  EXPECT_TRUE(sat(re("~(.*)")).isUnsat());
  EXPECT_TRUE(sat(re("~([])")).isSat());
  EXPECT_TRUE(sat(re("~(())")).isSat()); // anything nonempty
}

TEST_F(SolverTest, MembershipConjunctions) {
  // in(s, \w+) ∧ ¬in(s, .*\d.*) ∧ in(s, .{3}).
  std::vector<MembershipLiteral> Ls = {
      {re("\\w+"), true}, {re(".*\\d.*"), false}, {re(".{3}"), true}};
  SolveResult R = S.checkMembership(Ls);
  ASSERT_TRUE(R.isSat());
  EXPECT_EQ(R.Witness.size(), 3u);
  for (uint32_t C : R.Witness) {
    EXPECT_TRUE(CharSet::word().contains(C));
    EXPECT_FALSE(CharSet::digit().contains(C));
  }

  // Contradictory literals.
  std::vector<MembershipLiteral> Bad = {{re("a+"), true}, {re("a*"), false}};
  EXPECT_TRUE(S.checkMembership(Bad).isUnsat());
}

TEST_F(SolverTest, ContainsAndEquivalence) {
  EXPECT_TRUE(S.checkContains(re("ab"), re("a.*")).isUnsat()); // ab ⊆ a.*
  SolveResult R = S.checkContains(re("a.*"), re("ab"));
  ASSERT_TRUE(R.isSat()); // counterexample exists
  EXPECT_TRUE(E.matches(re("a.*"), R.Witness));
  EXPECT_FALSE(E.matches(re("ab"), R.Witness));

  EXPECT_TRUE(S.checkEquivalent(re("(a|b)*"), re("(a*b*)*")).isUnsat());
  EXPECT_TRUE(S.checkEquivalent(re("a(ba)*"), re("(ab)*a")).isUnsat());
  EXPECT_TRUE(S.checkEquivalent(re("a+"), re("a*")).isSat());
  // De Morgan at the language level.
  EXPECT_TRUE(
      S.checkEquivalent(re("~(a.*&.*b)"), re("~(a.*)|~(.*b)")).isUnsat());
}

TEST_F(SolverTest, DeterminizationBlowupFamily) {
  // (.*a.{k}) & (.*b.{k}) pins the (k+1)-th character from the end to both
  // 'a' and 'b': unsatisfiable, and proving it requires exhausting a state
  // space that is exponential for DFAs (small here thanks to dead-state
  // detection over derivatives).
  for (uint32_t K : {2u, 5u}) {
    Re R = M.inter(
        M.concat(M.top(), M.concat(M.chr('a'), M.loop(M.anyChar(), K, K))),
        M.concat(M.top(), M.concat(M.chr('b'), M.loop(M.anyChar(), K, K))));
    EXPECT_TRUE(sat(R).isUnsat()) << "k=" << K;
  }
  // The satisfiable variant keeps a tail: both markers occur, k apart from
  // some later position.
  for (uint32_t K : {2u, 6u, 10u}) {
    Re R = M.inter(re(".*a.{" + std::to_string(K) + "}.*"),
                   re(".*b.{" + std::to_string(K) + "}.*"));
    SolveResult Res = sat(R);
    ASSERT_TRUE(Res.isSat()) << "k=" << K;
  }
  Re Unsat = M.inter(re("a.{3}"), re("b.{3}"));
  EXPECT_TRUE(sat(Unsat).isUnsat());
}

TEST_F(SolverTest, SideConstraintsAsPositionRegex) {
  // Section 2 coda: with side constraint "s0 is not a digit", the password
  // regex forces a longer witness.
  Re Pw = M.inter(re(".*\\d.*"), re("~(.*01.*)"));
  Re Pos = S.positionConstraint({CharSet::digit().complement()});
  SolveResult R = sat(M.inter(Pw, Pos));
  ASSERT_TRUE(R.isSat());
  ASSERT_GE(R.Witness.size(), 2u);
  EXPECT_FALSE(CharSet::digit().contains(R.Witness[0]));
}

TEST_F(SolverTest, GraphDeadStatePersistsAcrossQueries) {
  Re Dead = M.inter(re("a+"), re("b+"));
  EXPECT_TRUE(S.checkSat(Dead).isUnsat());
  EXPECT_TRUE(S.graph().isDead(Dead));
  // A second query over a regex that reaches the dead one benefits from the
  // bot rule: prove unsat of c·(a+ & b+).
  Re Wrapped = M.concat(re("c"), Dead);
  SolveResult R = S.checkSat(Wrapped);
  EXPECT_TRUE(R.isUnsat());
}

TEST_F(SolverTest, DfsStrategyAgreesWithBfs) {
  SolveOptions Dfs;
  Dfs.Strategy = SearchStrategy::Dfs;
  const char *Patterns[] = {"a{3}b*",     "(ab)+&(ba)+",  "a+&b+",
                            ".*\\d.*&~(.*01.*)", "~(.*a.{6})&.*b.{6}",
                            "(.*a.{4})&(.*b.{4})"};
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult Bfs = S.checkSat(R);
    SolveResult DfsRes = S.checkSat(R, Dfs);
    EXPECT_EQ(DfsRes.Status, Bfs.Status) << P;
    if (DfsRes.isSat()) {
      EXPECT_TRUE(E.matches(R, DfsRes.Witness)) << P;
    }
  }
}

TEST_F(SolverTest, DfsFindsDeepWitnessesCheaply) {
  // BFS must materialize an exponential frontier of complement-tracking
  // states; DFS dives straight to a depth-(k+1) witness.
  SolveOptions Dfs;
  Dfs.Strategy = SearchStrategy::Dfs;
  Re R = re("~(.*a.{8})&.*b.{8}");
  SolveResult DfsRes = S.checkSat(R, Dfs);
  ASSERT_TRUE(DfsRes.isSat());
  EXPECT_TRUE(E.matches(R, DfsRes.Witness));
  SolveResult BfsRes = S.checkSat(R);
  ASSERT_TRUE(BfsRes.isSat());
  EXPECT_LT(DfsRes.StatesExplored, BfsRes.StatesExplored / 4);
}

TEST_F(SolverTest, BudgetsReportUnknown) {
  // A satisfiable but deep constraint with a tiny state budget.
  Re R = re("a{50}");
  SolveOptions Opts;
  Opts.MaxStates = 5;
  SolveResult Res = S.checkSat(R, Opts);
  EXPECT_EQ(Res.Status, SolveStatus::Unknown);
}

TEST_F(SolverTest, ArcOrderingHeuristicPreservesVerdicts) {
  SolveOptions Plain, Heur;
  Plain.Strategy = Heur.Strategy = SearchStrategy::Dfs;
  Heur.PreferSimplerArcs = true;
  const char *Patterns[] = {"a{3}b*",
                            "(ab)+&(ba)+",
                            ".*\\d.*&~(.*01.*)",
                            "~(.*a.{6})&.*b.{6}",
                            "(.*a.{4})&(.*b.{4})",
                            "(.*a.*)&(.*b.*)&(.*c.*)&~(.*abc.*)"};
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult A = S.checkSat(R, Plain);
    SolveResult B = S.checkSat(R, Heur);
    EXPECT_EQ(B.Status, A.Status) << P;
    if (B.isSat()) {
      EXPECT_TRUE(E.matches(R, B.Witness)) << P;
    }
  }
}

TEST_F(SolverTest, CaseSplitImplementsFig3a) {
  // One der/ite/or application on the Section 2 constraint.
  Re R = M.inter(re(".*\\d.*"), re("~(.*01.*)"));
  RegexSolver::CaseSplit Split = S.caseSplit(R);
  EXPECT_FALSE(Split.EmptyCase); // R is not nullable
  ASSERT_FALSE(Split.Arcs.empty());
  // Simulating the external solver loop: following any arc and prepending
  // its guard's character must stay inside L(R)'s residues.
  for (const TrArc &Arc : Split.Arcs) {
    auto Ch = Arc.Guard.sample();
    ASSERT_TRUE(Ch.has_value());
    EXPECT_FALSE(Arc.Guard.isEmpty());
    // The target is one union branch of D_ch(R): its language is included
    // in the full derivative's.
    EXPECT_TRUE(
        S.checkContains(Arc.Target, E.brzozowski(R, *Ch)).isUnsat());
  }
  // The upd side effect closed the vertex.
  EXPECT_TRUE(S.graph().isClosed(R));

  // Iterating case splits to a fixpoint proves emptiness via the graph —
  // the external-loop version of checkSat's unsat path.
  Re Dead = M.inter(re("(ab)+"), re("(ba)+"));
  std::vector<Re> Work = {Dead};
  size_t Guard = 0;
  while (!Work.empty() && ++Guard < 100) {
    Re Cur = Work.back();
    Work.pop_back();
    if (S.graph().isClosed(Cur))
      continue;
    for (const TrArc &A : S.caseSplit(Cur).Arcs)
      Work.push_back(A.Target);
  }
  EXPECT_TRUE(S.graph().isDead(Dead));
}

TEST_F(SolverTest, IntroHeadlineClaim) {
  // Section 1: "constructing the state space for M_r is infeasible, such
  // as for r = ~(.*a.{100})" — while the lazy solver answers immediately.
  Re R = re("~(.*a.{100})");
  SolveOptions Opts;
  Opts.MaxStates = 1000;
  Opts.Strategy = SearchStrategy::Dfs;
  SolveResult Res = S.checkSat(R, Opts);
  ASSERT_TRUE(Res.isSat());       // ε suffices, found without exploration
  EXPECT_LE(Res.StatesExplored, 2u);
  // Even a nonempty witness requirement stays tiny.
  SolveResult Res2 = S.checkSat(M.inter(R, re(".{101,}")), Opts);
  ASSERT_TRUE(Res2.isSat());
  EXPECT_TRUE(E.matches(R, Res2.Witness));
}

TEST_F(SolverTest, StopReasonNoneOnDecidedQueries) {
  SolveResult Sat = sat(re("a{3}b*"));
  EXPECT_TRUE(Sat.isSat());
  EXPECT_EQ(Sat.Stop, StopReason::None);
  SolveResult Unsat = sat(re("(ab)+&(ba)+"));
  EXPECT_TRUE(Unsat.isUnsat());
  EXPECT_EQ(Unsat.Stop, StopReason::None);
}

TEST_F(SolverTest, StopReasonStateBudget) {
  SolveOptions Opts;
  Opts.MaxStates = 2;
  SolveResult R = S.checkSat(re("a{50}"), Opts);
  EXPECT_EQ(R.Status, SolveStatus::Unknown);
  EXPECT_EQ(R.Stop, StopReason::StateBudget);
  EXPECT_EQ(R.Note, "state budget exhausted");
}

TEST_F(SolverTest, StopReasonTimeout) {
  // A 0x3F-step clock cadence alone could overshoot a 1ms budget by a lot
  // on blowup instances; the adaptive cadence must still report Timeout.
  // Scale the instance up until the budget actually binds (fast machines
  // may decide small ones within 1ms — those must report None).
  SolveOptions Opts;
  Opts.TimeoutMs = 1;
  for (int K = 10; K <= 22; K += 4) {
    std::string P = "(.*a.{" + std::to_string(K) + "})&(.*b.{" +
                    std::to_string(K) + "})&(.*c.{" + std::to_string(K) +
                    "})";
    SolveResult R = S.checkSat(re(P), Opts);
    if (R.Status != SolveStatus::Unknown) {
      EXPECT_EQ(R.Stop, StopReason::None);
      continue;
    }
    EXPECT_EQ(R.Stop, StopReason::Timeout);
    EXPECT_GT(R.Stats.TimeoutChecks, 0u);
    // The adaptive check keeps the overshoot bounded: allow a generous
    // 50x budget margin so slow CI machines don't flake, while still
    // catching a reversion to unchecked multi-second overruns.
    EXPECT_LT(R.TimeUs, Opts.TimeoutMs * 1000 * 50);
    return;
  }
  // All instances decided within the budget: nothing more to check.
}

#if SBD_OBS
TEST_F(SolverTest, ExactWorkCountersOnTinySolve) {
  // "ab": BFS dequeues "ab" then "b"; the ε-successor of "b" finishes.
  SolveResult R = sat(re("ab"));
  ASSERT_TRUE(R.isSat());
  EXPECT_EQ(R.Stats.SolverSteps, 2u);
  EXPECT_EQ(R.Stats.DnfCalls, 2u);         // one δdnf per dequeued state
  EXPECT_EQ(R.Stats.ArcsEnumerated, 2u);   // a→"b", b→ε
  EXPECT_EQ(R.Stats.PeakFrontier, 1u);     // chain: frontier never grows
  EXPECT_EQ(R.StatesExplored, 3u);         // "ab", "b", ε
  EXPECT_GT(R.Stats.DerivativeCalls, 0u);
  EXPECT_GT(R.Stats.ArenaNodes, 0u);
  EXPECT_GE(R.Stats.TotalUs, R.Stats.DeriveUs + R.Stats.DnfUs);
}

TEST_F(SolverTest, DisjointIntersectionCountsOnePrunedStep) {
  // "a&b" with disjoint alphabets dies after a single expansion.
  SolveResult R = sat(M.inter(re("a"), re("b")));
  ASSERT_TRUE(R.isUnsat());
  EXPECT_EQ(R.Stats.SolverSteps, 1u);
  EXPECT_EQ(R.Stats.DnfCalls, 1u);
  EXPECT_EQ(R.Stats.ArcsEnumerated, 0u); // δ(a&b) simplifies to ⊥
  EXPECT_EQ(R.StatesExplored, 1u);
}

TEST_F(SolverTest, MemoizedRepeatQueryDoesNoDerivativeWork) {
  Re R = re("(ab)+&(ba)+");
  SolveResult First = S.checkSat(R);
  ASSERT_TRUE(First.isUnsat());
  EXPECT_GT(First.Stats.DerivativeCalls, 0u);
  // The dead-state fact persists in the derivative graph: the second query
  // answers from the graph without a single derivative or arena node.
  SolveResult Second = S.checkSat(R);
  ASSERT_TRUE(Second.isUnsat());
  EXPECT_EQ(Second.Stats.DerivativeCalls, 0u);
  EXPECT_EQ(Second.Stats.ArenaNodes, 0u);
  EXPECT_EQ(Second.Stats.SolverSteps, 0u);
}
#endif // SBD_OBS

TEST_F(SolverTest, EmptinessAgreesWithMatcherSampling) {
  // If the solver says unsat, no sampled word may match; if sat, the
  // witness matches (checked in sat()).
  Rng Rand(7);
  const char *Pool[] = {"a",      "ab",      "a*",        "a|b",
                        "~(ab)",  "a&b",     "(a|b)*abb", "a{2,4}",
                        ".*a.*",  "~(.*a.*)", "a+&~(a{3})", "ab&ba"};
  for (const char *P1 : Pool)
    for (const char *P2 : Pool) {
      Re R = M.inter(re(P1), re(P2));
      SolveResult Res = sat(R);
      ASSERT_NE(Res.Status, SolveStatus::Unknown);
      if (Res.isUnsat()) {
        for (int I = 0; I != 40; ++I) {
          std::vector<uint32_t> W;
          size_t Len = Rand.below(5);
          for (size_t J = 0; J != Len; ++J)
            W.push_back(Rand.chance(1, 2) ? 'a' : 'b');
          EXPECT_FALSE(E.matches(R, W))
              << M.toString(R) << " claimed unsat but matches a word";
        }
      }
    }
}

TEST_F(SolverTest, DenseRowsRecordedAndReplayed) {
  // The first query closes vertices edge-wise; the second re-expands them
  // and records dense successor rows; the third replays the rows. All must
  // agree, and the root's row must match the uncompressed δdnf expansion.
  Re R = re("(a|b)*abb&~(.*bbb.*)");
  ASSERT_TRUE(S.checkSat(R).isSat());
  EXPECT_EQ(S.graph().arcRow(R), nullptr)
      << "one-shot queries must not pay for row recording";

  ASSERT_TRUE(S.checkSat(R).isSat());
  const std::vector<uint32_t> *Row = S.graph().arcRow(R);
  ASSERT_NE(Row, nullptr) << "re-expanded root vertex has no recorded row";
  ASSERT_FALSE(Row->empty());
  audit::Report Clean;
  audit::checkDenseRow(T, E.derivativeDnf(R), *Row, R.Id, Clean);
  EXPECT_TRUE(Clean.ok()) << Clean.str();

  SolveResult Third = S.checkSat(R);
  ASSERT_TRUE(Third.isSat());
  EXPECT_TRUE(E.matches(R, Third.Witness))
      << "replayed exploration produced a bogus witness";
}

TEST_F(SolverTest, DenseRowCorruptionIsDetected) {
  Re R = re("(a|b)*abb");
  ASSERT_TRUE(S.checkSat(R).isSat());
  ASSERT_TRUE(S.checkSat(R).isSat()); // second pass records the rows
  const std::vector<uint32_t> *Row = S.graph().arcRow(R);
  ASSERT_NE(Row, nullptr);
  ASSERT_GE(Row->size(), 2u);

  // Corrupt the first pair's target id: the checker re-derives through the
  // uncompressed δdnf and must flag the unjustified pair.
  S.graph().corruptArcRowForTest(R, 1, 0x7FFFFFFFu);
  audit::Report Out;
  audit::checkDenseRow(T, E.derivativeDnf(R), *Row, R.Id, Out);
  EXPECT_GT(Out.count(audit::ViolationKind::DfaRowMismatch), 0u)
      << "corrupted row passed the audit";
}

} // namespace
