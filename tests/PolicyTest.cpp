//===- tests/PolicyTest.cpp - Cloud-policy front end tests --------------------===//

#include "policy/Policy.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

TEST(Json, Values) {
  auto R = parseJson(R"({"a": [1, -2.5, "x\ny", true, null], "b": {}})");
  ASSERT_TRUE(R.Ok) << R.Error;
  const JsonValue &V = R.Value;
  ASSERT_TRUE(V.isObject());
  const JsonValue *A = V.get("a");
  ASSERT_TRUE(A && A->isArray());
  EXPECT_EQ(A->asArray().size(), 5u);
  EXPECT_EQ(A->asArray()[0].asNumber(), 1);
  EXPECT_EQ(A->asArray()[1].asNumber(), -2.5);
  EXPECT_EQ(A->asArray()[2].asString(), "x\ny");
  EXPECT_TRUE(A->asArray()[3].asBool());
  EXPECT_TRUE(A->asArray()[4].isNull());
  EXPECT_TRUE(V.get("b")->isObject());
  EXPECT_EQ(V.get("missing"), nullptr);
}

TEST(Json, UnicodeEscapes) {
  auto R = parseJson(R"(["A中"])");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value.asArray()[0].asString(), "A\xE4\xB8\xAD");
}

TEST(Json, Errors) {
  EXPECT_FALSE(parseJson("{").Ok);
  EXPECT_FALSE(parseJson("[1,]").Ok);
  EXPECT_FALSE(parseJson("\"unterminated").Ok);
  EXPECT_FALSE(parseJson("{} trailing").Ok);
  EXPECT_FALSE(parseJson("{1: 2}").Ok);
}

class PolicyTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  PolicyChecker Checker{Solver};
};

TEST_F(PolicyTest, PatternTranslation) {
  // The translation unrolls per character (no loop nodes), so compare with
  // the unrolled regex; language equality with the {n}-form is checked by
  // the solver in the Fig. 1 tests below.
  EXPECT_EQ(PolicyChecker::compileMatchPattern(M, "####-??" "?-##"),
            parseRegexOrDie(
                M, "\\d\\d\\d\\d-[a-zA-Z][a-zA-Z][a-zA-Z]-\\d\\d"));
  RegexSolver S2{E};
  EXPECT_TRUE(S2.checkEquivalent(
                    PolicyChecker::compileMatchPattern(M, "####-??" "?-##"),
                    parseRegexOrDie(M, "\\d{4}-[a-zA-Z]{3}-\\d{2}"))
                  .isUnsat());
  EXPECT_EQ(PolicyChecker::compileLikePattern(M, "2019*"),
            parseRegexOrDie(M, "2019.*"));
  EXPECT_EQ(PolicyChecker::compileLikePattern(M, "*.log"),
            parseRegexOrDie(M, ".*\\.log"));
  EXPECT_EQ(PolicyChecker::compileMatchPattern(M, ""), M.epsilon());
}

TEST_F(PolicyTest, Figure1PolicyCanFire) {
  // The exact document of Fig. 1.
  const char *Doc = R"({
    "if": {"allOf": [{"field": "date", "match": "####-???-##"},
                     {"anyOf": [{"field": "date", "like": "2019*"},
                                {"field": "date", "like": "2020*"}]}]},
    "then": {"effect": "audit"}})";
  PolicyAnalysis A = Checker.analyze(Doc);
  ASSERT_EQ(A.Status, SolveStatus::Sat);
  EXPECT_EQ(A.Effect, "audit");
  ASSERT_EQ(A.Activation.size(), 1u);
  EXPECT_EQ(A.Activation[0].first, "date");
  // The activating date matches both the shape and a year prefix.
  Re Shape = parseRegexOrDie(M, "\\d{4}-[a-zA-Z]{3}-\\d{2}");
  EXPECT_TRUE(E.matches(Shape, A.Activation[0].second));
  std::string Year = A.Activation[0].second.substr(0, 4);
  EXPECT_TRUE(Year == "2019" || Year == "2020");
}

TEST_F(PolicyTest, Figure1BuggyPolicyNeverFires) {
  // The paper's hypothetical bug: suffix instead of prefix year patterns.
  const char *Doc = R"({
    "if": {"allOf": [{"field": "date", "match": "####-???-##"},
                     {"anyOf": [{"field": "date", "like": "*2019"},
                                {"field": "date", "like": "*2020"}]}]},
    "then": {"effect": "audit"}})";
  PolicyAnalysis A = Checker.analyze(Doc);
  EXPECT_EQ(A.Status, SolveStatus::Unsat); // useless audit rule, detected
}

TEST_F(PolicyTest, MultipleFieldsAreIndependent) {
  const char *Doc = R"({
    "allOf": [{"field": "name", "like": "db-*"},
              {"field": "region", "in": ["eu-west", "eu-north"]},
              {"field": "region", "notEquals": "eu-west"}]})";
  PolicyAnalysis A = Checker.analyze(Doc);
  ASSERT_EQ(A.Status, SolveStatus::Sat);
  std::string Name, Region;
  for (const auto &[F, V] : A.Activation) {
    if (F == "name")
      Name = V;
    if (F == "region")
      Region = V;
  }
  EXPECT_EQ(Name.substr(0, 3), "db-");
  EXPECT_EQ(Region, "eu-north");
}

TEST_F(PolicyTest, NotCombinatorAndContains) {
  const char *Doc = R"({
    "allOf": [{"field": "path", "contains": "secret"},
              {"not": {"field": "path", "like": "/public/*"}}]})";
  PolicyAnalysis A = Checker.analyze(Doc);
  ASSERT_EQ(A.Status, SolveStatus::Sat);
  EXPECT_NE(A.Activation[0].second.find("secret"), std::string::npos);
}

TEST_F(PolicyTest, ContradictoryConditionDetected) {
  const char *Doc = R"({
    "allOf": [{"field": "env", "equals": "prod"},
              {"field": "env", "notEquals": "prod"}]})";
  EXPECT_EQ(Checker.analyze(Doc).Status, SolveStatus::Unsat);
}

TEST_F(PolicyTest, Implication) {
  const char *Strict = R"({"allOf": [
      {"field": "date", "match": "####-???-##"},
      {"field": "date", "like": "2020*"}]})";
  const char *Loose = R"({"allOf": [
      {"field": "date", "match": "####-???-##"},
      {"anyOf": [{"field": "date", "like": "2019*"},
                 {"field": "date", "like": "2020*"}]}]})";
  // Strict ⇒ Loose, but not conversely.
  EXPECT_EQ(Checker.implies(Strict, Loose), SolveStatus::Unsat);
  EXPECT_EQ(Checker.implies(Loose, Strict), SolveStatus::Sat);
}

TEST_F(PolicyTest, UnsupportedReportsCleanly) {
  EXPECT_EQ(Checker.analyze("not json").Status, SolveStatus::Unsupported);
  EXPECT_EQ(Checker.analyze(R"({"field": "x"})").Status,
            SolveStatus::Unsupported); // no operator
  EXPECT_EQ(Checker.analyze(R"({"allOf": "oops"})").Status,
            SolveStatus::Unsupported);
  // Empty combinators have the usual unit semantics.
  EXPECT_EQ(Checker.analyze(R"({"allOf": []})").Status, SolveStatus::Sat);
  EXPECT_EQ(Checker.analyze(R"({"anyOf": []})").Status, SolveStatus::Unsat);
}

} // namespace
