//===- tests/SmtSessionTest.cpp - Incremental SMT session tests --------------===//
///
/// \file
/// Tests for the incremental SMT-LIB session (DESIGN.md §15): per-command
/// protocol replies, push/pop assertion scoping, persistent compiled state
/// across checks, (reset) keeping the arena warm, verdict-cache hits
/// across repeated checks, and multi-check `solveScript` producing one
/// `SmtCheck` per check-sat.
///
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "cache/VerdictCache.h"
#include "core/Derivatives.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class SmtSessionTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSession Session{Solver};

  /// Executes every form of \p Text and returns the non-empty reply texts.
  std::vector<std::string> run(const std::string &Text) {
    std::vector<std::string> Out;
    for (const SmtSession::Reply &R : Session.executeAll(Text))
      if (!R.Text.empty())
        Out.push_back(R.Text);
    return Out;
  }

  /// Executes \p Text, expecting exactly one reply.
  std::string runOne(const std::string &Text) {
    std::vector<std::string> Out = run(Text);
    if (Out.size() != 1) {
      ADD_FAILURE() << "expected 1 reply for \"" << Text << "\", got "
                    << Out.size();
      return "";
    }
    return Out[0];
  }
};

TEST_F(SmtSessionTest, CheckSatRepliesWithVerdicts) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.+ (re.range "a" "b")))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  run(R"((assert (not (str.in_re s re.all))))"); // contradiction
  EXPECT_EQ(runOne("(check-sat)"), "unsat");
  EXPECT_EQ(Session.checksRun(), 2u);
}

TEST_F(SmtSessionTest, PrintSuccessTogglesSuccessReplies) {
  EXPECT_TRUE(run("(declare-const s String)").empty());
  run("(set-option :print-success true)");
  EXPECT_EQ(runOne("(assert (str.in_re s (str.to_re \"a\")))"), "success");
  run("(set-option :print-success false)");
  EXPECT_TRUE(run("(assert (str.in_re s (str.to_re \"a\")))").empty());
}

TEST_F(SmtSessionTest, ErrorsArePerCommandAndTheSessionContinues) {
  std::string Err = runOne("(pop)");
  EXPECT_NE(Err.find("(error "), std::string::npos);
  EXPECT_NE(Err.find("pop without matching push"), std::string::npos);
  // The session is still healthy (continued-execution behavior).
  run("(declare-const s String)");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
}

TEST_F(SmtSessionTest, UnknownCommandsAreErrorsInSessionMode) {
  std::string Err = runOne("(frobnicate)");
  EXPECT_NE(Err.find("unsupported command: frobnicate"), std::string::npos);
}

TEST_F(SmtSessionTest, PushPopScopesAssertions) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.* (str.to_re "ab")))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  EXPECT_EQ(Session.pushDepth(), 0u);

  run(R"(
    (push 1)
    (assert (str.in_re s re.none)))");
  EXPECT_EQ(Session.pushDepth(), 1u);
  EXPECT_EQ(Session.numAssertions(), 2u);
  EXPECT_EQ(runOne("(check-sat)"), "unsat");

  run("(pop 1)");
  EXPECT_EQ(Session.pushDepth(), 0u);
  EXPECT_EQ(Session.numAssertions(), 1u);
  EXPECT_EQ(runOne("(check-sat)"), "sat");
}

TEST_F(SmtSessionTest, GetModelRendersDefineFunsOnlyAfterSat) {
  std::string Err = runOne("(get-model)");
  EXPECT_NE(Err.find("model is not available"), std::string::npos);

  run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "ab"))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  std::string Model = runOne("(get-model)");
  EXPECT_NE(Model.find("define-fun s () String"), std::string::npos);
  EXPECT_NE(Model.find("\"ab\""), std::string::npos);
}

TEST_F(SmtSessionTest, CheckSatAssumingScopesTheAssumptionToOneCheck) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.* (str.to_re "a")))))");
  EXPECT_EQ(runOne("(check-sat-assuming ((str.in_re s re.none)))"), "unsat");
  // The assumption did not leak into the persistent assertion set.
  EXPECT_EQ(Session.numAssertions(), 1u);
  EXPECT_EQ(runOne("(check-sat)"), "sat");
}

TEST_F(SmtSessionTest, EchoAndGetInfoSpeakTheProtocol) {
  EXPECT_EQ(runOne("(echo \"hi there\")"), "\"hi there\"");
  EXPECT_EQ(runOne("(get-info :name)"), "(:name \"sbd\")");
  EXPECT_EQ(runOne("(get-info :error-behavior)"),
            "(:error-behavior continued-execution)");
}

TEST_F(SmtSessionTest, StatisticsIncludeSessionAndCacheCounters) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "a"))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  std::string Stats = runOne("(get-info :statistics)");
  EXPECT_NE(Stats.find(":checks-run"), std::string::npos);
  EXPECT_NE(Stats.find(":verdict-cache-hits"), std::string::npos);
}

TEST_F(SmtSessionTest, ResetDropsDeclarationsButArenaStaysWarm) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "ab"))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  size_t NodesBefore = M.numNodes();
  run("(reset)");
  // Undeclared after reset → per-command error.
  std::string Err = runOne("(assert (str.in_re s (str.to_re \"a\")))");
  EXPECT_NE(Err.find("(error "), std::string::npos);
  // The arena kept its interned terms (warmth survives reset).
  EXPECT_GE(M.numNodes(), NodesBefore);
  run("(declare-const s String)");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
}

TEST_F(SmtSessionTest, ExitSetsExitRequested) {
  std::vector<SmtSession::Reply> Replies = Session.executeAll("(exit)");
  ASSERT_EQ(Replies.size(), 1u);
  EXPECT_TRUE(Replies[0].ExitRequested);
}

TEST_F(SmtSessionTest, ParseErrorsYieldOneErrorReply) {
  std::vector<SmtSession::Reply> Replies = Session.executeAll("(assert");
  ASSERT_EQ(Replies.size(), 1u);
  EXPECT_TRUE(Replies[0].IsError);
}

/// The warm-session law the resident server relies on: with a verdict
/// cache attached, the second identical check is answered from the cache
/// with the identical verdict.
TEST_F(SmtSessionTest, RepeatedChecksHitTheVerdictCache) {
  cache::VerdictCache Cache;
  Session.setVerdictCache(&Cache);
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ (str.to_re "ab") (re.* (re.range "c" "d"))))))");
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  cache::VerdictCacheCounters Cold = Cache.counters();
  EXPECT_GE(Cold.Inserts, 1u);
  EXPECT_EQ(runOne("(check-sat)"), "sat");
  cache::VerdictCacheCounters Warm = Cache.counters();
  EXPECT_GT(Warm.Hits, Cold.Hits);

  SmtResult Last = Session.lastResult();
  EXPECT_EQ(Last.Status, SolveStatus::Sat);
}

TEST_F(SmtSessionTest, LastResultTracksTheMostRecentCheck) {
  run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "ab"))))");
  runOne("(check-sat)");
  EXPECT_EQ(Session.lastResult().Status, SolveStatus::Sat);
  run("(assert (str.in_re s re.none))");
  runOne("(check-sat)");
  EXPECT_EQ(Session.lastResult().Status, SolveStatus::Unsat);
}

/// Multi-check scripts through the one-shot driver: every check-sat lands
/// in SmtResult::Checks in order, and the top-level verdict is the last's.
TEST(SmtScriptChecksTest, SolveScriptRecordsEveryCheck) {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSolver Smt{Solver};

  SmtResult R = Smt.solveScript(R"(
    (declare-const s String)
    (assert (str.in_re s (re.* (str.to_re "ab"))))
    (check-sat)
    (push 1)
    (assert (str.in_re s re.none))
    (check-sat)
    (pop 1)
    (check-sat))");
  ASSERT_EQ(R.Checks.size(), 3u);
  EXPECT_EQ(R.Checks[0].Status, SolveStatus::Sat);
  EXPECT_EQ(R.Checks[1].Status, SolveStatus::Unsat);
  EXPECT_EQ(R.Checks[2].Status, SolveStatus::Sat);
  // Top-level fields mirror the last check.
  EXPECT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_FALSE(R.Model.empty());
}

TEST(SmtScriptChecksTest, ScriptWithoutChecksStillRunsImplicitFinalCheck) {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSolver Smt{Solver};

  SmtResult R = Smt.solveScript(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "a"))))");
  EXPECT_EQ(R.Status, SolveStatus::Sat);
  ASSERT_EQ(R.Checks.size(), 1u); // the implicit final check is recorded
  EXPECT_EQ(R.Checks[0].Status, SolveStatus::Sat);
}

} // namespace
