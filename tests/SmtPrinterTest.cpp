//===- tests/SmtPrinterTest.cpp - Regex → SMT-LIB round-trip tests -----------===//

#include "re/SmtPrinter.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"
#include "smt/SmtSolver.h"
#include "support/Rng.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSolver Smt{Solver};

  Re re(const std::string &Pat) { return parseRegexOrDie(M, Pat); }
};

TEST_F(PrinterTest, StringLiteralEscaping) {
  EXPECT_EQ(smtStringLiteral(fromUtf8("abc")), "\"abc\"");
  EXPECT_EQ(smtStringLiteral(fromUtf8("a\"b")), "\"a\"\"b\"");
  EXPECT_EQ(smtStringLiteral({0x0A}), "\"\\u{A}\"");
  EXPECT_EQ(smtStringLiteral({0x1F600}), "\"\\u{1F600}\"");
  EXPECT_EQ(smtStringLiteral({'\\'}), "\"\\u{5C}\"");
}

TEST_F(PrinterTest, StringLiteralDecoding) {
  EXPECT_EQ(decodeSmtString("abc"), fromUtf8("abc"));
  EXPECT_EQ(decodeSmtString("a\\u{41}b"), fromUtf8("aAb"));
  EXPECT_EQ(decodeSmtString("\\u0041"), fromUtf8("A"));
  EXPECT_EQ(decodeSmtString("\\u{1F600}"), std::vector<uint32_t>{0x1F600});
  // Malformed escapes stay literal.
  EXPECT_EQ(decodeSmtString("\\u{"), fromUtf8("\\u{"));
  EXPECT_EQ(decodeSmtString("\\uZZ"), fromUtf8("\\uZZ"));
}

TEST_F(PrinterTest, EncodeDecodeRoundTrip) {
  Rng Rand(3);
  for (int I = 0; I != 50; ++I) {
    std::vector<uint32_t> Word;
    size_t Len = Rand.below(12);
    for (size_t J = 0; J != Len; ++J)
      Word.push_back(static_cast<uint32_t>(Rand.below(MaxCodePoint + 1)));
    std::string Lit = smtStringLiteral(Word);
    // Strip quotes and collapse doubled quotes (what the reader does).
    std::string Contents;
    for (size_t J = 1; J + 1 < Lit.size(); ++J) {
      Contents.push_back(Lit[J]);
      if (Lit[J] == '"')
        ++J; // skip the doubling
    }
    EXPECT_EQ(decodeSmtString(Contents), Word);
  }
}

TEST_F(PrinterTest, TermForms) {
  EXPECT_EQ(regexToSmtTerm(M, M.empty()), "re.none");
  EXPECT_EQ(regexToSmtTerm(M, M.epsilon()), "(str.to_re \"\")");
  EXPECT_EQ(regexToSmtTerm(M, M.anyChar()), "re.allchar");
  EXPECT_EQ(regexToSmtTerm(M, M.top()), "re.all");
  EXPECT_EQ(regexToSmtTerm(M, re("abc")), "(str.to_re \"abc\")");
  EXPECT_EQ(regexToSmtTerm(M, re("[a-f]")), "(re.range \"a\" \"f\")");
  EXPECT_EQ(regexToSmtTerm(M, re("a*")), "(re.* (str.to_re \"a\"))");
  EXPECT_EQ(regexToSmtTerm(M, re("a{2,5}")),
            "((_ re.loop 2 5) (str.to_re \"a\"))");
  EXPECT_EQ(regexToSmtTerm(M, re("a?")), "(re.opt (str.to_re \"a\"))");
  EXPECT_EQ(regexToSmtTerm(M, re("~(ab)")),
            "(re.comp (str.to_re \"ab\"))");
}

TEST_F(PrinterTest, ScriptRoundTripPreservesStatus) {
  // Print a regex into a full script, re-solve it through the SMT front
  // end, and compare with solving the regex directly.
  const char *Patterns[] = {
      "abc",
      "a+&b+",
      "(ab)+&(ba)+",
      "~(.*01.*)&.*\\d.*",
      "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)",
      "(.*a.{4})&(.*b.{4})",
      "a{2,4}&a{5,6}",
      "[\\u4E00-\\u9FFF]{2}",
      "~(\\w*)&.{3}",
  };
  for (const char *P : Patterns) {
    Re R = re(P);
    SolveResult Direct = Solver.checkSat(R);
    ASSERT_NE(Direct.Status, SolveStatus::Unknown);
    std::string Script = regexToSmtScript(
        M, R, Direct.Status == SolveStatus::Sat);
    SmtResult Via = Smt.solveScript(Script);
    EXPECT_EQ(Via.Status, Direct.Status) << P << "\n" << Script;
    ASSERT_TRUE(Via.ExpectedSat.has_value());
    EXPECT_EQ(*Via.ExpectedSat, Direct.Status == SolveStatus::Sat);
  }
}

/// Property: printing then reading yields the same language (same interned
/// node, in fact, since both sides normalize identically).
class PrinterRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

Re randomRegex(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(5)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(26)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.pred(CharSet::range(0x100, 0x2FF));
    case 3:
      return M.epsilon();
    default:
      return M.anyChar();
    }
  }
  switch (R.below(7)) {
  case 0:
    return M.concat(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 1:
    return M.union_(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 2:
    return M.inter(randomRegex(M, R, Depth - 1), randomRegex(M, R, Depth - 1));
  case 3:
    return M.star(randomRegex(M, R, Depth - 1));
  case 4:
    return M.complement(randomRegex(M, R, Depth - 1));
  case 5: {
    uint32_t Min = static_cast<uint32_t>(R.below(3));
    return M.loop(randomRegex(M, R, Depth - 1), Min,
                  Min + 1 + static_cast<uint32_t>(R.below(3)));
  }
  default:
    return randomRegex(M, R, 0);
  }
}

TEST_P(PrinterRoundTripTest, PrintSolveAgreesWithDirectSolve) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver Solver(E);
  SmtSolver Smt(Solver);
  Rng Rand(GetParam());
  SolveOptions Opts;
  Opts.MaxStates = 50000;

  for (int I = 0; I != 5; ++I) {
    Re R = randomRegex(M, Rand, 3);
    SolveResult Direct = Solver.checkSat(R, Opts);
    if (Direct.Status == SolveStatus::Unknown)
      continue;
    std::string Script = regexToSmtScript(M, R, std::nullopt);
    SmtResult Via = Smt.solveScript(Script, Opts);
    EXPECT_EQ(Via.Status, Direct.Status)
        << M.toString(R) << "\n" << Script;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
