//===- tests/SmtTest.cpp - SMT-LIB front end tests ---------------------------===//

#include "smt/SmtSolver.h"

#include "core/Derivatives.h"
#include "re/RegexParser.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class SmtTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver Solver{E};
  SmtSolver Smt{Solver};

  SmtResult run(const std::string &Script) {
    return Smt.solveScript(Script);
  }

  /// Looks up a model value.
  std::string modelValue(const SmtResult &R, const std::string &Var) {
    for (const auto &[V, Value] : R.Model)
      if (V == Var)
        return Value;
    ADD_FAILURE() << "no model value for " << Var;
    return "";
  }
};

TEST(SExprTest, ReaderBasics) {
  auto R = parseSExprs("(assert (= x \"a b\")) ; comment\n(check-sat)");
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Forms.size(), 2u);
  EXPECT_TRUE(R.Forms[0].Kids[0].isSymbol("assert"));
  EXPECT_EQ(R.Forms[0].Kids[1].Kids[2].Text, "a b");
  EXPECT_TRUE(R.Forms[1].Kids[0].isSymbol("check-sat"));
}

TEST(SExprTest, NumbersStringsKeywords) {
  auto R = parseSExprs("(foo -42 17 :status |quoted sym| \"q\"\"q\")");
  ASSERT_TRUE(R.Ok);
  const SExpr &F = R.Forms[0];
  EXPECT_EQ(F.Kids[1].Number, -42);
  EXPECT_EQ(F.Kids[2].Number, 17);
  EXPECT_TRUE(F.Kids[3].isSymbol(":status"));
  EXPECT_EQ(F.Kids[4].Text, "quoted sym");
  EXPECT_EQ(F.Kids[5].Text, "q\"q"); // doubled-quote escape
}

TEST(SExprTest, Errors) {
  EXPECT_FALSE(parseSExprs("(unclosed").Ok);
  EXPECT_FALSE(parseSExprs("\"unterminated").Ok);
  EXPECT_FALSE(parseSExprs(")").Ok);
}

TEST_F(SmtTest, SimpleMembershipSat) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ (str.to_re "ab") (re.* (re.range "c" "d")))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  Re Pattern = parseRegexOrDie(M, "ab[c-d]*");
  EXPECT_TRUE(E.matches(Pattern, V));
}

TEST_F(SmtTest, ConjunctionBecomesIntersection) {
  // in(s, .*a.*) ∧ in(s, .*b.*) ∧ ¬in(s, .*c.*)
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ re.all (str.to_re "a") re.all)))
    (assert (str.in_re s (re.++ re.all (str.to_re "b") re.all)))
    (assert (not (str.in_re s (re.++ re.all (str.to_re "c") re.all))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  EXPECT_NE(V.find('a'), std::string::npos);
  EXPECT_NE(V.find('b'), std::string::npos);
  EXPECT_EQ(V.find('c'), std::string::npos);
}

TEST_F(SmtTest, UnsatConjunction) {
  SmtResult R = run(R"(
    (set-info :status unsat)
    (declare-const s String)
    (assert (str.in_re s (re.+ (str.to_re "a"))))
    (assert (str.in_re s (re.+ (str.to_re "b"))))
    (check-sat))");
  EXPECT_EQ(R.Status, SolveStatus::Unsat);
  ASSERT_TRUE(R.ExpectedSat.has_value());
  EXPECT_FALSE(*R.ExpectedSat);
}

TEST_F(SmtTest, DisjunctionEnumeratesImplicants) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (or (str.in_re s (str.to_re "no"))
                (str.in_re s (str.to_re "yes"))))
    (assert (not (str.in_re s (str.to_re "no"))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "yes");
}

TEST_F(SmtTest, ImplicationAndEquality) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (=> (str.in_re s (re.* (re.range "a" "z"))) (= s "ok")))
    (assert (str.in_re s (re.+ (re.range "a" "z"))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "ok");
}

TEST_F(SmtTest, LengthConstraintsCompileToLoops) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.* (str.to_re "ab"))))
    (assert (>= (str.len s) 3))
    (assert (<= (str.len s) 5))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "abab");

  SmtResult U = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.* (str.to_re "ab"))))
    (assert (= (str.len s) 3))
    (check-sat))");
  EXPECT_EQ(U.Status, SolveStatus::Unsat);
}

TEST_F(SmtTest, ReversedLengthComparison) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (< 2 (str.len s)))
    (assert (str.in_re s (re.* (str.to_re "x"))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_GE(modelValue(R, "s").size(), 3u);
}

TEST_F(SmtTest, MultipleVariablesAreIndependent) {
  SmtResult R = run(R"(
    (declare-const a String)
    (declare-const b String)
    (assert (str.in_re a (str.to_re "left")))
    (assert (str.in_re b (str.to_re "right")))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "a"), "left");
  EXPECT_EQ(modelValue(R, "b"), "right");
}

TEST_F(SmtTest, CrossVariableDisjunction) {
  // (in(a, X) ∧ in(b, Y)) ∨ (in(a, Y) ∧ in(b, X)) with X empty forces the
  // branch where a gets Y.
  SmtResult R = run(R"(
    (declare-const a String)
    (declare-const b String)
    (assert (or (and (str.in_re a re.none) (str.in_re b (str.to_re "y")))
                (and (str.in_re a (str.to_re "q")) (str.in_re b (str.to_re "x")))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "a"), "q");
  EXPECT_EQ(modelValue(R, "b"), "x");
}

TEST_F(SmtTest, StringPredicates) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.prefixof "ab" s))
    (assert (str.suffixof "yz" s))
    (assert (str.contains s "mid"))
    (assert (= (str.len s) 9))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  EXPECT_EQ(V.substr(0, 2), "ab");
  EXPECT_EQ(V.substr(7), "yz");
  EXPECT_NE(V.find("mid"), std::string::npos);
}

TEST_F(SmtTest, ReCompAndDiff) {
  SmtResult R = run(R"(
    (set-info :status sat)
    (declare-const s String)
    (assert (str.in_re s (re.diff (re.+ (re.range "0" "9"))
                                  (re.++ (str.to_re "0") re.all))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  ASSERT_FALSE(V.empty());
  EXPECT_NE(V[0], '0');

  SmtResult U = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.comp re.all)))
    (check-sat))");
  EXPECT_EQ(U.Status, SolveStatus::Unsat);
}

TEST_F(SmtTest, IndexedAndLegacyLoops) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s ((_ re.loop 2 3) (str.to_re "ab"))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "abab");

  SmtResult L = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.loop (str.to_re "ab") 2 3)))
    (check-sat))");
  ASSERT_EQ(L.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(L, "s"), "abab");
}

TEST_F(SmtTest, Fig1DatePolicyScript) {
  const char *Script = R"(
    (set-info :status sat)
    (declare-const date String)
    (assert (str.in_re date
      (re.++ ((_ re.loop 4 4) (re.range "0" "9"))
             (str.to_re "-")
             ((_ re.loop 3 3) (re.union (re.range "a" "z") (re.range "A" "Z")))
             (str.to_re "-")
             ((_ re.loop 2 2) (re.range "0" "9")))))
    (assert (or (str.in_re date (re.++ (str.to_re "2019") re.all))
                (str.in_re date (re.++ (str.to_re "2020") re.all))))
    (check-sat))";
  SmtResult R = run(Script);
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  Re Shape = parseRegexOrDie(M, "\\d{4}-[a-zA-Z]{3}-\\d{2}");
  EXPECT_TRUE(E.matches(Shape, modelValue(R, "date")));
  std::string Y = modelValue(R, "date").substr(0, 4);
  EXPECT_TRUE(Y == "2019" || Y == "2020");
}

TEST_F(SmtTest, StrAtPositionConstraints) {
  // The Section 2 coda: a side constraint on s0 interacts with the regex.
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ re.all (re.range "0" "9") re.all)))
    (assert (not (str.in_re s (re.++ re.all (str.to_re "01") re.all))))
    (assert (not (= (str.at s 0) "0")))
    (assert (not (= (str.at s 0) "")))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  ASSERT_FALSE(V.empty());
  EXPECT_NE(V[0], '0');

  // Pinning a character that conflicts with the regex.
  SmtResult U = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ (str.to_re "ab") re.all)))
    (assert (= (str.at s 1) "c"))
    (check-sat))");
  EXPECT_EQ(U.Status, SolveStatus::Unsat);

  // (= (str.at s k) "") forces shortness.
  SmtResult Short = run(R"(
    (declare-const s String)
    (assert (= (str.at s 2) ""))
    (assert (>= (str.len s) 2))
    (check-sat))");
  ASSERT_EQ(Short.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(Short, "s").size(), 2u);
}

TEST_F(SmtTest, CharacterCodeSideConstraints) {
  // The paper's Section 2 coda, verbatim shape: the password constraint
  // with the side condition s0 > '0' blocks the s0 = 0 branch.
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ re.all (re.range "0" "9") re.all)))
    (assert (not (str.in_re s (re.++ re.all (str.to_re "01") re.all))))
    (assert (> (str.to_code (str.at s 0)) 48))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  std::string V = modelValue(R, "s");
  ASSERT_FALSE(V.empty());
  EXPECT_GT(static_cast<unsigned char>(V[0]), '0');

  // An impossible code pins the constraint to unsat.
  SmtResult U = run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "abc")))
    (assert (= (str.to_code (str.at s 1)) 99))
    (check-sat))"); // position 1 is 'b' (98), not 99
  EXPECT_EQ(U.Status, SolveStatus::Unsat);

  // str.to_code = -1 encodes "out of range": |s| <= k.
  SmtResult Short = run(R"(
    (declare-const s String)
    (assert (= (str.to_code (str.at s 3)) -1))
    (assert (str.in_re s (re.+ (str.to_re "x"))))
    (check-sat))");
  ASSERT_EQ(Short.Status, SolveStatus::Sat);
  EXPECT_LE(modelValue(Short, "s").size(), 3u);

  // Reversed argument order flips the comparison.
  SmtResult Flip = run(R"(
    (declare-const s String)
    (assert (<= 97 (str.to_code (str.at s 0))))
    (assert (= (str.len s) 1))
    (check-sat))");
  ASSERT_EQ(Flip.Status, SolveStatus::Sat);
  EXPECT_GE(static_cast<unsigned char>(modelValue(Flip, "s")[0]), 'a');
}

TEST_F(SmtTest, DistinctXorIte) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (distinct s "no"))
    (assert (str.in_re s (re.union (str.to_re "no") (str.to_re "yes"))))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "yes");

  SmtResult X = run(R"(
    (declare-const s String)
    (assert (xor (= s "a") (= s "b")))
    (assert (distinct s "a"))
    (check-sat))");
  ASSERT_EQ(X.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(X, "s"), "b");

  SmtResult I = run(R"(
    (declare-const s String)
    (assert (ite (= (str.len s) 0) false (= s "pick")))
    (check-sat))");
  ASSERT_EQ(I.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(I, "s"), "pick");

  SmtResult U = run(R"(
    (declare-const s String)
    (assert (xor (= s "a") (= s "a")))
    (check-sat))");
  EXPECT_EQ(U.Status, SolveStatus::Unsat);
}

TEST_F(SmtTest, UnsupportedConstructsReportCleanly) {
  EXPECT_EQ(run("(declare-const s Int)(assert true)(check-sat)").Status,
            SolveStatus::Sat); // Int declared but unused is fine
  EXPECT_EQ(run("(declare-const s String)(assert (str.in_re s unknown.op))"
                "(check-sat)")
                .Status,
            SolveStatus::Unsupported);
  // push/pop are supported now (incremental scripts); empty stack → Sat.
  EXPECT_EQ(run("(push)(pop)(check-sat)").Status, SolveStatus::Sat);
  EXPECT_EQ(run("(pop)(check-sat)").Status,
            SolveStatus::Unsupported); // pop without matching push
  EXPECT_EQ(run("(assert (= 1 2)").Status, SolveStatus::Unsupported);
}

TEST_F(SmtTest, DeepDisjunctionEnumeration) {
  // An or-tree where only the last branch is realizable: the implicant
  // enumeration must backtrack through all dead branches.
  std::string Script = "(declare-const s String)\n(assert (or";
  for (int I = 0; I != 12; ++I)
    Script += " (and (str.in_re s (str.to_re \"x" + std::to_string(I) +
              "\")) (str.in_re s re.none))";
  Script += " (str.in_re s (str.to_re \"hit\"))))\n(check-sat)";
  SmtResult R = run(Script);
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "hit");

  // All-dead variant is unsat.
  std::string Bad = "(declare-const s String)\n(assert (or";
  for (int I = 0; I != 12; ++I)
    Bad += " (and (str.in_re s (str.to_re \"x" + std::to_string(I) +
           "\")) (str.in_re s re.none))";
  Bad += "))\n(check-sat)";
  EXPECT_EQ(run(Bad).Status, SolveStatus::Unsat);
}

TEST_F(SmtTest, NegativeLengthBounds) {
  EXPECT_EQ(run(R"((declare-const s String)
                   (assert (>= (str.len s) -5))(check-sat))")
                .Status,
            SolveStatus::Sat); // trivially true
  EXPECT_EQ(run(R"((declare-const s String)
                   (assert (<= (str.len s) -1))(check-sat))")
                .Status,
            SolveStatus::Unsat); // lengths are nonnegative
  EXPECT_EQ(run(R"((declare-const s String)
                   (assert (= (str.len s) -2))(check-sat))")
                .Status,
            SolveStatus::Unsat);
}

TEST_F(SmtTest, EmptyScriptIsSat) {
  SmtResult R = run("(declare-const s String)(check-sat)");
  EXPECT_EQ(R.Status, SolveStatus::Sat);
  EXPECT_EQ(modelValue(R, "s"), "");
}

TEST_F(SmtTest, GetInfoStatistics) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (re.++ (str.to_re "ab") (re.* (re.range "0" "9")))))
    (assert (>= (str.len s) 3))
    (check-sat)
    (get-info :statistics))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  ASSERT_FALSE(R.Statistics.empty());
  EXPECT_EQ(R.Statistics.front(), '(');
  EXPECT_EQ(R.Statistics.back(), ')');
  EXPECT_NE(R.Statistics.find(":cubes-tried"), std::string::npos);
  EXPECT_NE(R.Statistics.find(":regex-queries"), std::string::npos);
  EXPECT_NE(R.Statistics.find(":derivative-calls"), std::string::npos);
  EXPECT_NE(R.Statistics.find(":solve-time-us"), std::string::npos);
  EXPECT_GE(R.CubesTried, 1u);
#if SBD_OBS
  EXPECT_GT(R.Stats.DerivativeCalls, 0u);
#endif
  // Without the request, no statistics are rendered.
  SmtResult Plain = run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "x")))
    (check-sat))");
  EXPECT_TRUE(Plain.Statistics.empty());
}

TEST_F(SmtTest, TrailingFormsAfterCheckSatKeepTheVerdict) {
  SmtResult R = run(R"(
    (declare-const s String)
    (assert (str.in_re s (str.to_re "ok")))
    (check-sat)
    (get-model)
    (exit))");
  EXPECT_EQ(R.Status, SolveStatus::Sat);
}

TEST_F(SmtTest, StopReasonsAreMachineReadable) {
  SmtResult Unsup = run("(declare-const s String)"
                        "(assert (str.replace s \"a\" \"b\"))(check-sat)");
  EXPECT_EQ(Unsup.Status, SolveStatus::Unsupported);
  EXPECT_EQ(Unsup.Stop, StopReason::UnsupportedFragment);

  SmtResult Parse = run("(assert (= 1 2)");
  EXPECT_EQ(Parse.Status, SolveStatus::Unsupported);
  EXPECT_EQ(Parse.Stop, StopReason::ParseError);

  SmtResult Sat = run(R"((declare-const s String)
    (assert (str.in_re s (str.to_re "x")))(check-sat))");
  EXPECT_EQ(Sat.Stop, StopReason::None);
}

} // namespace
