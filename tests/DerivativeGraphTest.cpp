//===- tests/DerivativeGraphTest.cpp - Graph + SCC dead/alive tests ----------===//

#include "solver/DerivativeGraph.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

/// Produces distinct regex handles to use as abstract vertices. Loops with
/// distinct bounds over a fixed body are guaranteed distinct and non-final;
/// `final` handles are nullable variants.
class VertexFactory {
public:
  explicit VertexFactory(RegexManager &M) : M(M), Body(M.chr('v')) {}

  /// A non-final vertex handle.
  Re plain(uint32_t I) { return M.loop(Body, I + 2, I + 2); }
  /// A final (nullable) vertex handle.
  Re final(uint32_t I) { return M.loop(Body, 0, I + 2); }

private:
  RegexManager &M;
  Re Body;
};

class GraphTest : public ::testing::Test {
protected:
  RegexManager M;
  VertexFactory F{M};
};

TEST_F(GraphTest, OpenVerticesAreNeverDead) {
  DerivativeGraph G(M);
  Re A = F.plain(0);
  G.addVertex(A);
  EXPECT_FALSE(G.isDead(A));
  EXPECT_FALSE(G.isClosed(A));
}

TEST_F(GraphTest, FinalVerticesAreAlive) {
  DerivativeGraph G(M);
  Re A = F.final(0);
  G.addVertex(A);
  EXPECT_TRUE(G.isAlive(A));
  EXPECT_TRUE(G.isFinal(A));
  G.close(A, {});
  EXPECT_FALSE(G.isDead(A));
}

TEST_F(GraphTest, ClosedSinkIsDead) {
  DerivativeGraph G(M);
  Re A = F.plain(0);
  G.close(A, {}); // no successors, not final
  EXPECT_TRUE(G.isDead(A));
}

TEST_F(GraphTest, DeadPropagatesBackwards) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), C = F.plain(2);
  G.close(A, {B});
  EXPECT_FALSE(G.isDead(A)); // B still open
  G.close(B, {C});
  EXPECT_FALSE(G.isDead(A));
  G.close(C, {});
  EXPECT_TRUE(G.isDead(C));
  EXPECT_TRUE(G.isDead(B));
  EXPECT_TRUE(G.isDead(A));
}

TEST_F(GraphTest, AliveBlocksDeath) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.final(1);
  G.close(A, {B});
  G.close(B, {});
  EXPECT_TRUE(G.isAlive(A));
  EXPECT_FALSE(G.isDead(A));
  EXPECT_FALSE(G.isDead(B));
}

TEST_F(GraphTest, CycleOfClosedVerticesIsDead) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), C = F.plain(2);
  // A → B → C → A, all closed, none final: the whole SCC is dead.
  G.close(A, {B});
  G.close(B, {C});
  EXPECT_FALSE(G.isDead(A));
  G.close(C, {A});
  EXPECT_TRUE(G.isDead(A));
  EXPECT_TRUE(G.isDead(B));
  EXPECT_TRUE(G.isDead(C));
}

TEST_F(GraphTest, CycleWithEscapeToOpenIsNotDead) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), Exit = F.plain(9);
  G.close(A, {B});
  G.close(B, {A, Exit});
  EXPECT_FALSE(G.isDead(A)); // Exit is still open
  G.close(Exit, {});
  EXPECT_TRUE(G.isDead(Exit));
  EXPECT_TRUE(G.isDead(A));
  EXPECT_TRUE(G.isDead(B));
}

TEST_F(GraphTest, CycleReachingFinalIsAlive) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), Fin = F.final(0);
  G.close(A, {B});
  G.close(B, {A, Fin});
  G.close(Fin, {});
  EXPECT_TRUE(G.isAlive(A));
  EXPECT_TRUE(G.isAlive(B));
  EXPECT_FALSE(G.isDead(A));
}

TEST_F(GraphTest, SelfLoopDeadEnd) {
  DerivativeGraph G(M);
  Re A = F.plain(0);
  G.close(A, {A});
  EXPECT_TRUE(G.isDead(A));
}

TEST_F(GraphTest, TwoNestedCyclesMerge) {
  // A → B → C → A and B → D → B: everything is one component after all
  // edges; dead once all closed.
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), C = F.plain(2), D = F.plain(3);
  G.close(A, {B});
  G.close(B, {C, D});
  G.close(C, {A});
  EXPECT_FALSE(G.isDead(A)); // D open
  G.close(D, {B});
  EXPECT_TRUE(G.isDead(A));
  EXPECT_TRUE(G.isDead(D));
}

TEST_F(GraphTest, UpdIsIdempotentOnClosedVertices) {
  DerivativeGraph G(M);
  Re A = F.plain(0), B = F.plain(1), C = F.final(2);
  G.close(A, {B});
  size_t Edges = G.numEdges();
  G.close(A, {C}); // no effect: A is closed
  EXPECT_EQ(G.numEdges(), Edges);
  EXPECT_EQ(G.successors(A).size(), 1u);
}

/// Randomized stress: the incremental SCC mode must agree with the lazy
/// reverse-reachability reference on every prefix of a random build
/// sequence.
class GraphAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphAgreementTest, IncrementalAgreesWithLazyReference) {
  RegexManager M;
  VertexFactory F(M);
  Rng Rand(GetParam());

  const uint32_t NumVerts = 24;
  std::vector<Re> Handles;
  for (uint32_t I = 0; I != NumVerts; ++I) {
    // ~20% of vertices are final.
    Handles.push_back(Rand.chance(1, 5) ? F.final(I) : F.plain(I));
  }

  DerivativeGraph Inc(M, DeadDetection::IncrementalScc);
  DerivativeGraph Lazy(M, DeadDetection::LazyReverse);

  // Close vertices in random order with random successor sets; after each
  // step, all three derived predicates must agree on every vertex.
  std::vector<uint32_t> Order(NumVerts);
  for (uint32_t I = 0; I != NumVerts; ++I)
    Order[I] = I;
  for (uint32_t I = NumVerts; I > 1; --I)
    std::swap(Order[I - 1], Order[Rand.below(I)]);

  for (uint32_t Step = 0; Step != NumVerts; ++Step) {
    uint32_t V = Order[Step];
    std::vector<Re> Targets;
    size_t Fanout = Rand.below(4);
    for (size_t T = 0; T != Fanout; ++T)
      Targets.push_back(Handles[Rand.below(NumVerts)]);
    Inc.close(Handles[V], Targets);
    Lazy.close(Handles[V], Targets);

    for (uint32_t U = 0; U != NumVerts; ++U) {
      if (!Inc.hasVertex(Handles[U]))
        continue;
      ASSERT_EQ(Lazy.hasVertex(Handles[U]), true);
      EXPECT_EQ(Inc.isDead(Handles[U]), Lazy.isDead(Handles[U]))
          << "dead disagreement at step " << Step << " vertex " << U
          << " seed " << GetParam();
      EXPECT_EQ(Inc.isAlive(Handles[U]), Lazy.isAlive(Handles[U]));
      EXPECT_EQ(Inc.isClosed(Handles[U]), Lazy.isClosed(Handles[U]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphAgreementTest,
                         ::testing::Range<uint64_t>(1, 61));

} // namespace
