//===- tests/FuzzOracleTest.cpp - Differential fuzzing subsystem tests ------===//
//
// Deterministic coverage of src/fuzz: the seeded generators, the
// cross-engine differential oracle on a hand-picked seed corpus, the
// greedy shrinker (including the injected-bug negative test the ISSUE
// demands: a corrupted engine must be caught AND reduced to a minimal
// witness), the campaign driver, and the JSON report format.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "policy/Json.h"
#include "re/RegexParser.h"

#include <gtest/gtest.h>

#include <set>

using namespace sbd;
using namespace sbd::fuzz;

namespace {

/// Fixture wiring one arena stack + oracle the way the driver does.
struct OracleFixture {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};
  DifferentialOracle O{E, S};

  std::vector<uint32_t> word(const std::string &Ascii) {
    std::vector<uint32_t> W;
    for (char C : Ascii)
      W.push_back(static_cast<uint32_t>(static_cast<unsigned char>(C)));
    return W;
  }
};

//===----------------------------------------------------------------------===//
// Seed corpus: hand-picked patterns covering every constructor, checked
// through the full oracle with zero expected discrepancies.
//===----------------------------------------------------------------------===//

struct CorpusEntry {
  const char *Pattern;
  const char *Words[4]; // nullptr-terminated list of sample words
};

const CorpusEntry SeedCorpus[] = {
    {"abc", {"abc", "ab", "abcd", nullptr}},
    {"(a|b)*", {"", "abab", "abc", nullptr}},
    {"a*&~(b)", {"", "aaa", "b", nullptr}},
    {"~(a*)", {"", "aa", "ba", nullptr}},
    {"(a|b)*a(a|b){2}", {"aaa", "abab", "ba", nullptr}},
    {"[a-c]{2,4}", {"ab", "abca", "a", nullptr}},
    {"(ab)*&(a|b)*", {"abab", "aba", "", nullptr}},
    {"~(~(a))", {"a", "b", "", nullptr}},
    {"(a&b)c", {"c", "ac", "", nullptr}},
    {"[^a]*", {"", "bcd", "bad", nullptr}},
    {"\\d{1,3}", {"7", "123", "1234", nullptr}},
    {"(a|ab)(c|bc)", {"abc", "ac", "abbc", nullptr}},
    {"~(.*ab.*)", {"", "ab", "ba", nullptr}},
    {"((a|b)*&~(.*aa.*))b", {"abb", "aab", "b", nullptr}},
    {"a{2,}", {"a", "aa", "aaaa", nullptr}},
};

TEST(FuzzOracle, SeedCorpusIsCleanAcrossAllEngines) {
  OracleFixture F;
  std::vector<Discrepancy> Ds;
  for (const CorpusEntry &C : SeedCorpus) {
    Re R = parseRegexOrDie(F.M, C.Pattern);
    std::vector<std::vector<uint32_t>> Words;
    Words.push_back({}); // always probe ϵ
    for (const char *const *W = C.Words; *W; ++W)
      Words.push_back(F.word(*W));
    F.O.checkSample(R, Words, Ds);
    EXPECT_TRUE(Ds.empty()) << "pattern " << C.Pattern << " first: "
                            << (Ds.empty() ? "" : Ds.front().Detail);
    Ds.clear();
  }
  EXPECT_GT(F.O.checksRun(), 0u);
}

TEST(FuzzOracle, DeMorganLawsHoldOnCorpusPairs) {
  OracleFixture F;
  std::vector<Discrepancy> Ds;
  Re A = parseRegexOrDie(F.M, "(a|b)*a");
  Re B = parseRegexOrDie(F.M, "b(a|b)*");
  std::vector<std::vector<uint32_t>> Words = {
      {}, F.word("a"), F.word("ba"), F.word("ab"), F.word("bab")};
  F.O.checkDeMorgan(A, B, Words, Ds);
  EXPECT_TRUE(Ds.empty()) << (Ds.empty() ? "" : Ds.front().Detail);
}

//===----------------------------------------------------------------------===//
// Generators: determinism and constructor coverage.
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, SameSeedSameRegexes) {
  RegexManager M1, M2;
  RegexGenerator G1(M1, 12345), G2(M2, 12345);
  for (int I = 0; I != 50; ++I) {
    Re A = G1.generate();
    Re B = G2.generate();
    EXPECT_EQ(M1.toString(A), M2.toString(B)) << "diverged at sample " << I;
  }
}

TEST(FuzzGenerator, CoversEveryConstructor) {
  RegexManager M;
  RegexGenerator G(M, 99);
  std::set<RegexKind> Seen;
  std::function<void(Re)> Walk = [&](Re R) {
    Seen.insert(M.kind(R));
    for (Re K : M.node(R).Kids)
      Walk(K);
  };
  for (int I = 0; I != 400; ++I)
    Walk(G.generate());
  for (RegexKind K :
       {RegexKind::Empty, RegexKind::Epsilon, RegexKind::Pred,
        RegexKind::Concat, RegexKind::Star, RegexKind::Loop, RegexKind::Union,
        RegexKind::Inter, RegexKind::Compl})
    EXPECT_TRUE(Seen.count(K))
        << "constructor " << static_cast<int>(K) << " never generated";
}

TEST(FuzzGenerator, GeneratedPatternsRoundTripThroughParser) {
  RegexManager M;
  RegexGenerator G(M, 2024);
  for (int I = 0; I != 100; ++I) {
    Re R = G.generate();
    std::string S = M.toString(R);
    RegexParseResult P = parseRegex(M, S);
    ASSERT_TRUE(P.Ok) << "unparseable print: " << S << " (" << P.Error << ")";
    EXPECT_EQ(P.Value, R) << "reparse not identical for: " << S;
  }
}

TEST(FuzzGenerator, WordPoolContainsMintermWitnesses) {
  RegexManager M;
  WordGenerator W(M, 7);
  Re R = parseRegexOrDie(M, "[a-d]*&~([b-c]*)");
  W.prime(R);
  // The pool must witness both predicate blocks: something in [b-c] and
  // something in [a-d] \ [b-c].
  bool InBC = false, InADnotBC = false;
  for (uint32_t Cp : W.pool()) {
    InBC |= Cp == 'b' || Cp == 'c';
    InADnotBC |= Cp == 'a' || Cp == 'd';
  }
  EXPECT_TRUE(InBC);
  EXPECT_TRUE(InADnotBC);
  // Word generation is deterministic per seed.
  WordGenerator W2(M, 7);
  W2.prime(R);
  EXPECT_EQ(W.generate(), W2.generate());
}

//===----------------------------------------------------------------------===//
// Shrinker.
//===----------------------------------------------------------------------===//

TEST(FuzzShrinker, ReductionsAreStrictlySmaller) {
  RegexManager M;
  Shrinker Sh(M);
  Re R = parseRegexOrDie(M, "(ab|c*d){2,5}&~(e|f)");
  for (Re C : Sh.reductions(R))
    EXPECT_LT(M.node(C).Size, M.node(R).Size);
}

TEST(FuzzShrinker, MinimizesToTheFailingCore) {
  RegexManager M;
  Shrinker Sh(M);
  // "Failure" = the regex still contains an intersection node. The
  // minimal such term reachable by one-step reductions keeps exactly one
  // Inter over leaves that the smart constructors cannot fold away.
  std::function<bool(Re)> HasInter = [&](Re R) {
    if (M.kind(R) == RegexKind::Inter)
      return true;
    for (Re K : M.node(R).Kids)
      if (HasInter(K))
        return true;
    return false;
  };
  Re Big = parseRegexOrDie(M, "(ab|c)*((ab&(a|b)b)|d{2,3})e*");
  std::vector<uint32_t> W = {'x', 'y', 'z'};
  ASSERT_TRUE(HasInter(Big));
  ShrinkResult R = Sh.shrink(
      Big, W, [&](Re C, const std::vector<uint32_t> &) { return HasInter(C); });
  EXPECT_TRUE(HasInter(R.Pattern));
  EXPECT_LE(M.node(R.Pattern).Size, 5u) << M.toString(R.Pattern);
  EXPECT_TRUE(R.Word.empty()); // the word plays no role in this failure
  EXPECT_GT(R.Steps, 0u);
}

//===----------------------------------------------------------------------===//
// The negative test: an intentionally corrupted engine must be caught and
// shrunk to a minimal witness (≤ 8 syntax nodes).
//===----------------------------------------------------------------------===//

TEST(FuzzNegative, CorruptedEngineIsCaughtAndShrunkToMinimalWitness) {
  FuzzOptions Opts;
  Opts.Seed = 7;
  Opts.Iterations = 400;
  Opts.CorruptStub = true;
  Opts.MaxDiscrepancies = 8;
  FuzzReport Rep = runFuzz(Opts);

  ASSERT_FALSE(Rep.Discrepancies.empty())
      << "oracle failed to catch the injected inter-as-union bug";
  bool SawStub = false;
  uint32_t MinNodes = ~0u;
  for (const Discrepancy &D : Rep.Discrepancies) {
    if (D.Engine != "inter_as_union_stub")
      continue;
    SawStub = true;
    MinNodes = std::min(MinNodes, D.RegexNodes);
    // The reported pattern must round-trip and still reproduce the bug.
    RegexManager M;
    RegexParseResult P = parseRegex(M, D.Pattern);
    ASSERT_TRUE(P.Ok) << D.Pattern;
    TrManager T(M);
    DerivativeEngine E(M, T);
    DifferentialOracle::MembershipStub Stub = interAsUnionStub();
    EXPECT_NE(Stub.Matches(M, E, P.Value, D.Word),
              E.matches(P.Value, D.Word))
        << "shrunk sample no longer reproduces: " << D.Pattern;
  }
  ASSERT_TRUE(SawStub);
  EXPECT_LE(MinNodes, 8u) << "shrinker left a non-minimal witness";
}

TEST(FuzzNegative, RegressionSnippetMentionsTheShrunkPattern) {
  Discrepancy D;
  D.Law = OracleLaw::Membership;
  D.Engine = "inter_as_union_stub";
  D.Pattern = "a&b\\d";
  D.Word = {'a'};
  D.Detail = "stub=1 ref=0";
  D.RegexNodes = 4;
  std::string Snippet = renderRegressionTest(D, 7, 1);
  EXPECT_NE(Snippet.find("TEST(SbdFuzzRegression, Seed7Case1)"),
            std::string::npos);
  EXPECT_NE(Snippet.find("a&b\\\\d"), std::string::npos)
      << "pattern must be C++-escaped:\n"
      << Snippet;
  EXPECT_NE(Snippet.find("{{97}}"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Campaign driver + JSON report.
//===----------------------------------------------------------------------===//

TEST(FuzzCampaign, CleanRunOverAllEngines) {
  FuzzOptions Opts;
  Opts.Seed = 42;
  Opts.Iterations = 300;
  FuzzReport Rep = runFuzz(Opts);
  EXPECT_TRUE(Rep.ok()) << Rep.json();
  EXPECT_EQ(Rep.Iterations, 300u);
  EXPECT_EQ(Rep.Samples, 300u * Opts.WordsPerRegex);
  EXPECT_GT(Rep.Checks, Rep.Samples);
}

TEST(FuzzCampaign, RunsAreDeterministicPerSeed) {
  FuzzOptions Opts;
  Opts.Seed = 99;
  Opts.Iterations = 120;
  FuzzReport A = runFuzz(Opts);
  FuzzReport B = runFuzz(Opts);
  EXPECT_EQ(A.Samples, B.Samples);
  EXPECT_EQ(A.Checks, B.Checks);
  EXPECT_EQ(A.Discrepancies.size(), B.Discrepancies.size());
}

TEST(FuzzCampaign, JsonReportParsesAndCarriesTheContract) {
  FuzzOptions Opts;
  Opts.Seed = 5;
  Opts.Iterations = 60;
  FuzzReport Rep = runFuzz(Opts);
  JsonParseResult P = parseJson(Rep.json());
  ASSERT_TRUE(P.Ok) << P.Error << "\n" << Rep.json();
  const JsonValue &V = P.Value;
  ASSERT_TRUE(V.isObject());
  ASSERT_NE(V.get("seed"), nullptr);
  EXPECT_EQ(V.get("seed")->asNumber(), 5.0);
  EXPECT_EQ(V.get("iterations")->asNumber(), 60.0);
  ASSERT_NE(V.get("ok"), nullptr);
  EXPECT_TRUE(V.get("ok")->asBool());
  ASSERT_NE(V.get("discrepancies"), nullptr);
  EXPECT_TRUE(V.get("discrepancies")->isArray());
  const JsonValue *Timings = V.get("engine_timings");
  ASSERT_NE(Timings, nullptr);
  ASSERT_TRUE(Timings->isArray());
  // Every engine in the oracle must have been exercised.
  std::set<std::string> Names;
  for (const JsonValue &T : Timings->asArray())
    Names.insert(T.get("name")->asString());
  for (const char *Must : {"ref_matcher", "dfa_matcher", "tiny_dfa_matcher",
                           "sbfa", "solver_bfs", "eager"})
    EXPECT_TRUE(Names.count(Must)) << "engine never ran: " << Must;
  ASSERT_NE(V.get("obs"), nullptr);
  EXPECT_TRUE(V.get("obs")->isObject());
}

TEST(FuzzCampaign, CorruptReportJsonEscapesCleanly) {
  FuzzOptions Opts;
  Opts.Seed = 7;
  Opts.Iterations = 150;
  Opts.CorruptStub = true;
  Opts.MaxDiscrepancies = 4;
  FuzzReport Rep = runFuzz(Opts);
  ASSERT_FALSE(Rep.ok());
  JsonParseResult P = parseJson(Rep.json());
  ASSERT_TRUE(P.Ok) << P.Error << "\n" << Rep.json();
  const JsonValue *Ds = P.Value.get("discrepancies");
  ASSERT_NE(Ds, nullptr);
  ASSERT_FALSE(Ds->asArray().empty());
  const JsonValue &D0 = Ds->asArray().front();
  EXPECT_EQ(D0.get("law")->asString(), "membership");
  EXPECT_EQ(D0.get("engine")->asString(), "inter_as_union_stub");
}

} // namespace
